package sim

import (
	"testing"

	"chant/internal/check"
)

// allocKernel builds a parallel kernel plus a long-running advance-only
// workload whose windows are homogeneous: procs march their clocks forward
// in small jittered steps, so every window executes a handful of events per
// shard, some of whose resumption insertions land inside the window
// (provisional heap entries) and some past the bound (held-back entries).
func allocKernel(shards, nprocs, iters int, alpha Duration) *ParKernel {
	pk := NewParKernel(shards, alpha)
	for i := 0; i < nprocs; i++ {
		i := i
		pk.Spawn("w", func(p *Proc) {
			rng := NewRNG(uint64(i) + 1)
			for it := 0; it < iters; it++ {
				p.Advance(Duration(rng.Intn(5)+1) * 5)
			}
		})
	}
	return pk
}

// stepWindow drives exactly one window through the controller's own path:
// find the minimal pending key, compute the lookahead bound, execute, merge.
// The callback heap is empty and no deadline applies, so this mirrors Run's
// loop body for this workload.
func stepWindow(t *testing.T, pk *ParKernel, fanout bool) {
	t.Helper()
	have := false
	var min eventKey
	for _, s := range pk.shards {
		if s.heap.Len() == 0 {
			continue
		}
		if k := s.heap.peekKey(); !have || k.less(min) {
			min, have = k, true
		}
	}
	if !have {
		t.Fatal("workload exhausted mid-measurement; raise iters")
	}
	bound := eventKey{at: min.at.Add(pk.alpha)}
	pk.Windows++
	if fanout {
		act := pk.selectActive(bound)
		pk.dispatch(bound, act)
		pk.merge(bound)
		return
	}
	pk.runWindow(bound)
}

// TestParKernelSteadyStateZeroAlloc is the allocation regression guard for
// the window machinery: once slice capacities have warmed up, a
// steady-state window — inline or fanned out to the worker pool — must
// perform zero heap allocations. Record slots, insertion logs, resolve
// tables, the loser tree, and the active-shard scratch are all kernel-owned
// and reused; the heaps retain their backing arrays.
func TestParKernelSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race for allocation exactness")
	}
	if check.Enabled {
		t.Skip("chantdebug invariant checks are not allocation-audited")
	}
	const shards, nprocs = 4, 8
	const alpha = Duration(20)
	pk := allocKernel(shards, nprocs, 200000, alpha)

	// Warm up capacities (logs, ins slices, heaps, resolve tables) on the
	// inline path, then measure it.
	for i := 0; i < 100; i++ {
		stepWindow(t, pk, false)
	}
	if got := testing.AllocsPerRun(100, func() { stepWindow(t, pk, false) }); got != 0 {
		t.Errorf("inline steady-state window allocates %.1f times; want 0", got)
	}

	// The fan-out path: first dispatch starts the worker pool (one-time
	// allocation), after which windows must also be allocation-free.
	stepWindow(t, pk, true)
	if got := testing.AllocsPerRun(100, func() { stepWindow(t, pk, true) }); got != 0 {
		t.Errorf("fanned-out steady-state window allocates %.1f times; want 0", got)
	}
	if pk.InlineWindows == 0 {
		t.Errorf("inline windows never taken on the inline path")
	}

	// Drain the workload so the proc goroutines finish.
	if err := pk.Run(0); err != nil {
		t.Fatalf("drain run: %v", err)
	}
}
