package sim

import (
	"errors"
	"fmt"

	"chant/internal/check"
)

// Kernel is a sequential discrete-event simulator. Events — kernel callbacks
// and process resumptions — execute strictly in (time, insertion) order, so
// simulations are deterministic. At any moment at most one goroutine runs:
// either the kernel loop or the single active process, which means shared
// simulator state needs no locking.
//
// A Kernel is also the building block of the parallel kernel: ParKernel owns
// several Kernels, one per shard, each executing a partition of the processes
// inside bounded-lag windows. A shard kernel (shard != nil) must not be Run
// directly; everything else — scheduling, process handoff, the event heap —
// is shared between the two modes, with the shard hooks in insert routing
// in-window insertions through the window log.
type Kernel struct {
	now     Time
	seq     uint64
	heap    eventHeap
	procs   []*Proc
	running bool
	stopped bool

	// shard is non-nil when this kernel is one shard of a ParKernel; it
	// carries the window bookkeeping (provisional sequence numbers, the
	// execution log replayed at barriers).
	shard *shardState

	// Events counts every event dispatched, for diagnostics.
	Events uint64
}

// ErrDeadlock is returned by Run when live processes remain but no events are
// scheduled, meaning the simulation can never make progress.
var ErrDeadlock = errors.New("sim: deadlock: live processes but no pending events")

// NewKernel returns an empty simulator with the clock at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// schedNow is the clock insertions are validated against and Signal wakes
// resume at: the shard's own clock while it executes a window, the global
// controller clock between windows (a shard's clock lags the controller's
// whenever the shard had no event at the front of a window), and plain now
// in sequential mode.
func (k *Kernel) schedNow() Time {
	if k.shard != nil && !k.shard.active {
		return k.shard.pk.now
	}
	return k.now
}

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the caller; the kernel panics to surface the bug immediately.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.schedNow() {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, k.schedNow()))
	}
	k.insert(t, fn, nil)
}

// After schedules fn to run d after the current virtual time.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.schedNow().Add(d), fn) }

// AtOn schedules fn at virtual time t against the kernel that owns target:
// in a sequential simulation (or when target lives on this same shard) it is
// exactly At; across shards of a parallel simulation it records a
// cross-shard insertion that takes effect at the next window barrier, in the
// deterministic merged order. Cross-shard events must respect the parallel
// kernel's lookahead: their time must be at least one window ahead, which
// the barrier enforces.
func (k *Kernel) AtOn(target *Proc, t Time, fn func()) {
	if t < k.schedNow() {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, k.schedNow()))
	}
	tk := target.k
	if tk == k || k.shard == nil {
		k.insert(t, fn, nil)
		return
	}
	k.shard.insertRemote(tk, t, fn, nil)
}

// Journal runs fn immediately in a sequential simulation; inside a parallel
// window it defers fn to the next barrier, where every shard's journal
// replays in the merged global event order. Use it for side effects on
// shared, order-sensitive state (the fault plane's event stream) so the
// parallel kernel reproduces the sequential ordering bit for bit.
func (k *Kernel) Journal(fn func()) {
	if sh := k.shard; sh != nil && sh.active {
		r := sh.cur()
		r.jrn = append(r.jrn, fn)
		return
	}
	fn()
}

// insert routes one event insertion: plain (time, seq) heap push in
// sequential mode, shard-aware (provisional keys, window log) in parallel
// mode.
func (k *Kernel) insert(t Time, fn func(), p *Proc) {
	if sh := k.shard; sh != nil {
		sh.insertLocal(k, t, fn, p)
		return
	}
	k.seq++
	k.heap.push(event{at: t, seq: k.seq, fn: fn, proc: p})
}

// scheduleProc enqueues a resumption of p at time t.
func (k *Kernel) scheduleProc(p *Proc, t Time) {
	if t < k.schedNow() {
		panic(fmt.Sprintf("sim: proc %q resumed in the past: %v < now %v", p.name, t, k.schedNow()))
	}
	k.insert(t, nil, p)
}

// Run executes events until none remain, the deadline passes, or Stop is
// called. A deadline of 0 means no deadline. It returns ErrDeadlock if all
// events are exhausted while some spawned process has neither finished nor
// parked forever by choice (a parked process with no pending wake counts as
// deadlocked, since nothing can ever signal it once the event heap is empty).
func (k *Kernel) Run(deadline Time) error {
	if k.shard != nil {
		panic("sim: Run on a shard kernel; drive the ParKernel instead")
	}
	if k.running {
		panic("sim: Kernel.Run called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()

	for k.heap.Len() > 0 && !k.stopped {
		if deadline != 0 && k.heap.peekTime() > deadline {
			k.now = deadline
			return nil
		}
		e := k.heap.pop()
		if check.Enabled && e.at < k.now {
			check.Failf("sim: event heap went backwards: popped event at %v with the clock already at %v (%d events dispatched)", e.at, k.now, k.Events)
		}
		k.now = e.at
		k.Events++
		if e.fn != nil {
			e.fn()
			continue
		}
		e.proc.run()
	}
	if k.stopped {
		return nil
	}
	for _, p := range k.procs {
		if p.state != procDone {
			return fmt.Errorf("%w (process %q is %s at %v)", ErrDeadlock, p.name, p.state, k.now)
		}
	}
	return nil
}

// Stop halts the run loop after the current event finishes. It is intended
// to be called from inside an event callback or process. On a shard of a
// parallel kernel it latches a stop of the whole ParKernel, which takes
// effect at the next window barrier.
func (k *Kernel) Stop() {
	if k.shard != nil {
		k.shard.pk.Stop()
		return
	}
	k.stopped = true
}
