package sim

import (
	"errors"
	"fmt"

	"chant/internal/check"
)

// Kernel is a sequential discrete-event simulator. Events — kernel callbacks
// and process resumptions — execute strictly in (time, insertion) order, so
// simulations are deterministic. At any moment at most one goroutine runs:
// either the kernel loop or the single active process, which means shared
// simulator state needs no locking.
type Kernel struct {
	now     Time
	seq     uint64
	heap    eventHeap
	procs   []*Proc
	running bool
	stopped bool

	// Events counts every event dispatched, for diagnostics.
	Events uint64
}

// ErrDeadlock is returned by Run when live processes remain but no events are
// scheduled, meaning the simulation can never make progress.
var ErrDeadlock = errors.New("sim: deadlock: live processes but no pending events")

// NewKernel returns an empty simulator with the clock at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the caller; the kernel panics to surface the bug immediately.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, k.now))
	}
	k.seq++
	k.heap.push(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now.Add(d), fn) }

// scheduleProc enqueues a resumption of p at time t.
func (k *Kernel) scheduleProc(p *Proc, t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: proc %q resumed in the past: %v < now %v", p.name, t, k.now))
	}
	k.seq++
	k.heap.push(event{at: t, seq: k.seq, proc: p})
}

// Run executes events until none remain, the deadline passes, or Stop is
// called. A deadline of 0 means no deadline. It returns ErrDeadlock if all
// events are exhausted while some spawned process has neither finished nor
// parked forever by choice (a parked process with no pending wake counts as
// deadlocked, since nothing can ever signal it once the event heap is empty).
func (k *Kernel) Run(deadline Time) error {
	if k.running {
		panic("sim: Kernel.Run called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()

	for k.heap.Len() > 0 && !k.stopped {
		if deadline != 0 && k.heap.peekTime() > deadline {
			k.now = deadline
			return nil
		}
		e := k.heap.pop()
		if check.Enabled && e.at < k.now {
			check.Failf("sim: event heap went backwards: popped event at %v with the clock already at %v (%d events dispatched)", e.at, k.now, k.Events)
		}
		k.now = e.at
		k.Events++
		if e.fn != nil {
			e.fn()
			continue
		}
		e.proc.run()
	}
	if k.stopped {
		return nil
	}
	for _, p := range k.procs {
		if p.state != procDone {
			return fmt.Errorf("%w (process %q is %s at %v)", ErrDeadlock, p.name, p.state, k.now)
		}
	}
	return nil
}

// Stop halts the run loop after the current event finishes. It is intended
// to be called from inside an event callback or process.
func (k *Kernel) Stop() { k.stopped = true }
