package sim

import (
	"fmt"
	"strings"
	"testing"
)

// churnResult is everything observable the churn workload produces: per-proc
// logs (appended only from the proc's own shard, so recording is race-free),
// the journal stream (appended only at the controller's merge or, on the
// sequential kernel, inline), final time, event count, and Run's error.
type churnResult struct {
	logs []string
	jrn  string
	now  Time
	evs  uint64
	err  string
}

// runChurn drives a seeded random workload built to stress every merge
// ingredient: same-instant ties (jittered advances), provisional keys for
// events both inside the window (short local At) and past its bound (long
// local At — the held-back path), cross-shard insertions (AtOn to the ring
// neighbor at ≥ alpha), journal entries, and parked processes woken across
// shards.
func runChurn(k testKernel, seed uint64, nprocs, iters int, alpha Duration) churnResult {
	logs := make([][]string, nprocs)
	rx := make([]int, nprocs) // only touched on proc i's shard
	var jrn []string
	procs := make([]*Proc, nprocs)
	journal := func(k *Kernel, fn func()) { k.Journal(fn) }
	for i := range procs {
		i := i
		procs[i] = k.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			rng := NewRNG(seed*0x9E3779B97F4A7C15 + uint64(i) + 1)
			for it := 0; it < iters; it++ {
				p.Advance(Duration(rng.Intn(4)) * 5) // often 0: ties
				logs[i] = append(logs[i], fmt.Sprintf("it%d@%v", it, p.Now()))
				switch rng.Intn(4) {
				case 0:
					// Local event inside the current window (provisional key
					// resolved while the window is still open).
					at := p.Now().Add(Duration(rng.Intn(3)) * 2)
					p.Kernel().At(at, func() {
						logs[i] = append(logs[i], fmt.Sprintf("near@%v", at))
					})
				case 1:
					// Local event at least a full window ahead: held out of
					// the heap until the barrier resolves its seq.
					at := p.Now().Add(alpha + Duration(rng.Intn(3))*7)
					p.Kernel().At(at, func() {
						logs[i] = append(logs[i], fmt.Sprintf("far@%v", at))
					})
				case 2:
					// Capture the timestamp now: journal closures replay at
					// the barrier in merged order, after the proc's clock
					// has moved on (same contract the fault plane follows).
					it, now := it, p.Now()
					journal(p.Kernel(), func() {
						jrn = append(jrn, fmt.Sprintf("j%d.%d@%v", i, it, now))
					})
				}
				// Ring delivery: crosses shards whenever the neighbor lives
				// elsewhere, always at least alpha out.
				j := (i + 1) % nprocs
				dst := procs[j]
				at := p.Now().Add(alpha + Duration(rng.Intn(3))*5)
				src := i
				p.Kernel().AtOn(dst, at, func() {
					rx[j]++
					logs[j] = append(logs[j], fmt.Sprintf("rx%d@%v", src, dst.Now()))
					dst.Signal()
				})
				if it%4 == 3 {
					for rx[i] <= it {
						p.WaitSignal()
					}
					logs[i] = append(logs[i], fmt.Sprintf("wake@%v", p.Now()))
				}
			}
		})
	}
	res := churnResult{}
	if err := k.Run(0); err != nil {
		res.err = err.Error()
	}
	for _, l := range logs {
		res.logs = append(res.logs, strings.Join(l, " "))
	}
	res.jrn = strings.Join(jrn, " ")
	res.now = k.Now()
	res.evs = kernelEvents(k)
	return res
}

// diffChurn fails the test wherever got diverges from want.
func diffChurn(t *testing.T, label string, got, want churnResult) {
	t.Helper()
	if got.err != want.err {
		t.Errorf("%s: err %q, want %q", label, got.err, want.err)
	}
	if got.now != want.now {
		t.Errorf("%s: final time %v, want %v", label, got.now, want.now)
	}
	if got.evs != want.evs {
		t.Errorf("%s: %d events, want %d", label, got.evs, want.evs)
	}
	if got.jrn != want.jrn {
		t.Errorf("%s: journal diverged\n got %s\nwant %s", label, got.jrn, want.jrn)
	}
	for i := range want.logs {
		if got.logs[i] != want.logs[i] {
			t.Errorf("%s: proc %d log diverged\n got %s\nwant %s", label, i, got.logs[i], want.logs[i])
		}
	}
}

// TestMergeDifferential is the merge property test: over ≥20 seeded random
// workloads (provisional keys, held-back insertions, cross-shard
// insertions, journal entries) and several shard counts, the loser-tree
// merge, the retained selection-scan reference merge, and the sequential
// kernel must all produce the identical observable stream.
func TestMergeDifferential(t *testing.T) {
	const nprocs, iters = 6, 40
	const alpha = Duration(20)
	for seed := uint64(0); seed < 24; seed++ {
		want := runChurn(NewKernel(), seed, nprocs, iters, alpha)
		if want.err != "" {
			t.Fatalf("seed %d: sequential churn errored: %v", seed, want.err)
		}
		for _, shards := range []int{2, 3, 5, 8} {
			tree := NewParKernel(shards, alpha)
			diffChurn(t, fmt.Sprintf("seed %d shards %d loser-tree", seed, shards),
				runChurn(tree, seed, nprocs, iters, alpha), want)

			ref := NewParKernel(shards, alpha)
			ref.refMerge = true
			diffChurn(t, fmt.Sprintf("seed %d shards %d ref-scan", seed, shards),
				runChurn(ref, seed, nprocs, iters, alpha), want)
		}
	}
}

// TestMergeRefFlagExercisesBothPaths guards the differential test itself:
// the two kernels must actually take different merge paths (a broken
// refMerge flag would silently compare the loser tree against itself), and
// multi-shard runs must execute some multi-shard windows for the tree to
// merge.
func TestMergeRefFlagExercisesBothPaths(t *testing.T) {
	const alpha = Duration(20)
	pk := NewParKernel(4, alpha)
	runChurn(pk, 1, 6, 40, alpha)
	if pk.Windows == 0 {
		t.Fatalf("churn workload executed no windows")
	}
	if pk.refMerge {
		t.Fatalf("refMerge must default to the loser tree")
	}
}
