package sim

import (
	"fmt"
	"strings"
	"testing"
)

// testKernel is the common surface of Kernel and ParKernel the differential
// workloads drive.
type testKernel interface {
	Spawn(name string, fn func(*Proc)) *Proc
	At(t Time, fn func())
	Run(deadline Time) error
	Now() Time
}

// kernelEvents reports the dispatched-event count for either kernel kind.
func kernelEvents(k testKernel) uint64 {
	switch k := k.(type) {
	case *Kernel:
		return k.Events
	case *ParKernel:
		return k.Events
	}
	return 0
}

// ringResult is everything observable a ring workload produces: per-proc
// event logs (each proc's log is only ever appended from its own shard, so
// recording is race-free under the parallel kernel), controller callback
// log, final virtual time, dispatched events, and Run's error.
type ringResult struct {
	logs  []string // per proc, joined
	ctrl  string
	now   Time
	evs   uint64
	err   string
}

// runRing drives a ring of nprocs processes for iters steps: jittered
// advances force plenty of same-instant ties, every step sends a delivery
// callback to the right neighbor at least alpha in the future (crossing
// shards under the parallel kernel), and every third step parks awaiting a
// signal. A few controller callbacks land mid-run.
func runRing(k testKernel, nprocs, iters int, alpha Duration, deadline Time) ringResult {
	logs := make([][]string, nprocs)
	rx := make([]int, nprocs) // deliveries received; only touched on proc i's shard
	procs := make([]*Proc, nprocs)
	for i := range procs {
		i := i
		procs[i] = k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			rng := NewRNG(uint64(i)*0x9E3779B9 + 1)
			for it := 0; it < iters; it++ {
				p.Advance(Duration(rng.Intn(4)) * 5) // often 0: same-instant ties
				logs[i] = append(logs[i], fmt.Sprintf("it%d@%v", it, p.Now()))
				j := (i + 1) % nprocs
				dst := procs[j]
				at := p.Now().Add(alpha + Duration(rng.Intn(3))*5)
				src := i
				p.Kernel().AtOn(dst, at, func() {
					rx[j]++
					logs[j] = append(logs[j], fmt.Sprintf("rx%d@%v", src, dst.Now()))
					dst.Signal()
				})
				if it%3 == 2 {
					// Wait until the left neighbor's it-th send has arrived.
					// Signals coalesce, so recheck the counter per wake; the
					// ring pipeline guarantees the send is eventually in
					// flight, so this never starves.
					for rx[i] <= it {
						p.WaitSignal()
					}
					logs[i] = append(logs[i], fmt.Sprintf("wake@%v", p.Now()))
				}
			}
		})
	}
	var ctrl []string
	for _, t := range []Time{0, 37, 115} {
		t := t
		k.At(t, func() {
			ctrl = append(ctrl, fmt.Sprintf("cb@%v/%v", t, k.Now()))
		})
	}
	res := ringResult{}
	if err := k.Run(deadline); err != nil {
		res.err = err.Error()
	}
	for _, l := range logs {
		res.logs = append(res.logs, strings.Join(l, " "))
	}
	res.ctrl = strings.Join(ctrl, " ")
	res.now = k.Now()
	res.evs = kernelEvents(k)
	return res
}

// TestParKernelMatchesSequential checks the parallel kernel reproduces the
// sequential kernel's behavior exactly — per-proc event sequences with
// times, controller callback interleaving, final clock, and total event
// count — across shard counts, including shard counts that do not divide
// the process count.
func TestParKernelMatchesSequential(t *testing.T) {
	const nprocs, iters = 8, 60
	const alpha = Duration(20)
	want := runRing(NewKernel(), nprocs, iters, alpha, 0)
	if want.err != "" {
		t.Fatalf("sequential ring errored: %v", want.err)
	}
	for _, shards := range []int{1, 2, 3, 5, 8} {
		pk := NewParKernel(shards, alpha)
		got := runRing(pk, nprocs, iters, alpha, 0)
		if got.err != "" {
			t.Fatalf("shards=%d: parallel ring errored: %v", shards, got.err)
		}
		if got.now != want.now {
			t.Errorf("shards=%d: final time %v, sequential %v", shards, got.now, want.now)
		}
		if got.evs != want.evs {
			t.Errorf("shards=%d: %d events dispatched, sequential %d", shards, got.evs, want.evs)
		}
		if got.ctrl != want.ctrl {
			t.Errorf("shards=%d: controller log\n got %s\nwant %s", shards, got.ctrl, want.ctrl)
		}
		for i := range want.logs {
			if got.logs[i] != want.logs[i] {
				t.Errorf("shards=%d: proc %d log diverged\n got %s\nwant %s", shards, i, got.logs[i], want.logs[i])
			}
		}
		if pk.Windows == 0 && shards > 1 {
			t.Errorf("shards=%d: no windows executed; workload never reached the parallel path", shards)
		}
	}
}

// TestParKernelDeadline checks deadline semantics match: the run halts with
// the clock pinned at the deadline and no error, mid-workload.
func TestParKernelDeadline(t *testing.T) {
	const alpha = Duration(20)
	const deadline = Time(150)
	want := runRing(NewKernel(), 6, 100, alpha, deadline)
	got := runRing(NewParKernel(3, alpha), 6, 100, alpha, deadline)
	if want.now != deadline {
		t.Fatalf("sequential run ended at %v, want the deadline %v", want.now, deadline)
	}
	if got.now != want.now || got.evs != want.evs || got.err != want.err {
		t.Errorf("deadline run diverged: got (now %v, evs %d, err %q), want (now %v, evs %d, err %q)",
			got.now, got.evs, got.err, want.now, want.evs, want.err)
	}
	for i := range want.logs {
		if got.logs[i] != want.logs[i] {
			t.Errorf("proc %d log diverged\n got %s\nwant %s", i, got.logs[i], want.logs[i])
		}
	}
}

// TestParKernelDeadlockReport checks a stuck simulation reports the same
// deadlock, naming the same process at the same time, under both kernels.
func TestParKernelDeadlockReport(t *testing.T) {
	build := func(k testKernel) {
		k.Spawn("worker", func(p *Proc) {
			p.Advance(10)
		})
		k.Spawn("stuck", func(p *Proc) {
			p.Advance(25)
			p.WaitSignal() // nobody will ever signal
		})
	}
	sk := NewKernel()
	build(sk)
	serr := sk.Run(0)
	pk := NewParKernel(2, 20)
	build(pk)
	perr := pk.Run(0)
	if serr == nil || perr == nil {
		t.Fatalf("expected deadlock from both kernels, got sequential=%v parallel=%v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Errorf("deadlock reports differ:\n sequential %v\n parallel   %v", serr, perr)
	}
}

// TestParKernelLookaheadViolation checks that a cross-shard event scheduled
// inside the current window — a broken lookahead promise — panics loudly at
// the barrier instead of silently corrupting the event order.
func TestParKernelLookaheadViolation(t *testing.T) {
	pk := NewParKernel(2, 100)
	procs := make([]*Proc, 2)
	procs[0] = pk.Spawn("a", func(p *Proc) {
		// Arrival at now+1 is far inside the [now, now+100) window.
		p.Kernel().AtOn(procs[1], p.Now().Add(1), func() {})
		p.Advance(5)
	})
	procs[1] = pk.Spawn("b", func(p *Proc) {
		p.Advance(5)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a lookahead-violation panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	pk.Run(0)
}

// TestParKernelStop checks Stop latched from inside a shard halts the run at
// the next barrier without a deadlock report.
func TestParKernelStop(t *testing.T) {
	pk := NewParKernel(2, 50)
	pk.Spawn("stopper", func(p *Proc) {
		p.Advance(10)
		p.Kernel().Stop()
		p.Advance(10)
	})
	pk.Spawn("other", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(5)
		}
	})
	if err := pk.Run(0); err != nil {
		t.Fatalf("stopped run reported %v, want nil", err)
	}
	if pk.Now() >= 500 {
		t.Fatalf("run did not stop early: clock at %v", pk.Now())
	}
}
