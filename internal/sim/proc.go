package sim

import "chant/internal/check"

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procReady   procState = iota // has a pending resume event
	procRunning                  // currently executing
	procParked                   // waiting for a Signal
	procDone                     // body function returned
)

func (s procState) String() string {
	switch s {
	case procReady:
		return "ready"
	case procRunning:
		return "running"
	case procParked:
		return "parked"
	case procDone:
		return "done"
	}
	return "invalid"
}

// Proc is a simulation process: a body function that runs in virtual time,
// interleaved with other processes by the kernel. A process advances the
// clock explicitly with Advance and can park awaiting a Signal. Under the
// covers each process is a goroutine, but handoff through the kernel
// guarantees only one runs at a time, in deterministic order.
type Proc struct {
	k       *Kernel
	name    string
	state   procState
	started bool
	sig     bool // coalesced wakeup hint delivered while not parked
	resume  chan struct{}
	yield   chan struct{}
	fn      func(*Proc)
}

// Spawn creates a process named name running fn, scheduled to start at the
// current virtual time (after already-queued events at that time).
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process that starts at virtual time t.
func (k *Kernel) SpawnAt(t Time, name string, fn func(*Proc)) *Proc {
	if k.shard != nil {
		panic("sim: SpawnAt on a shard kernel; spawn through the ParKernel")
	}
	p := &Proc{
		k:      k,
		name:   name,
		fn:     fn,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.scheduleProc(p, t)
	return p
}

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time. Valid only while the process is
// running (which is the only time its body can call it).
func (p *Proc) Now() Time { return p.k.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.state == procDone }

// run resumes the process and blocks until it yields back to the kernel.
// Called only from the kernel loop.
func (p *Proc) run() {
	p.state = procRunning
	if !p.started {
		p.started = true
		// The goroutine is a coroutine: strict yield/resume handoff with
		// the kernel loop means only one side ever runs at a time.
		//chant:allow-nondet strict coroutine handoff, no free interleaving
		go func() {
			p.fn(p)
			p.state = procDone
			p.yield <- struct{}{}
		}()
	} else {
		p.resume <- struct{}{}
	}
	<-p.yield
}

// Advance moves this process's clock forward by d, yielding to the kernel so
// other processes with earlier virtual times run first. Advancing by a
// non-positive duration is a no-op: the process keeps running without
// yielding.
func (p *Proc) Advance(d Duration) {
	if check.Enabled && p.state != procRunning {
		check.Failf("sim: Advance on proc %q in state %s: only the currently running process may advance its clock", p.name, p.state)
	}
	if d <= 0 {
		return
	}
	p.k.scheduleProc(p, p.k.now.Add(d))
	p.state = procReady
	p.yield <- struct{}{}
	<-p.resume
}

// WaitSignal parks the process until another process or event callback calls
// Signal. Signals are coalesced: a Signal delivered while the process is
// runnable satisfies the next WaitSignal immediately. No virtual time passes
// while parked beyond what elapses before the Signal arrives.
func (p *Proc) WaitSignal() {
	if check.Enabled && p.state != procRunning {
		check.Failf("sim: WaitSignal on proc %q in state %s: only the currently running process may park itself", p.name, p.state)
	}
	if p.sig {
		p.sig = false
		return
	}
	p.state = procParked
	p.yield <- struct{}{}
	<-p.resume
	p.sig = false
}

// Signal wakes the process if it is parked in WaitSignal, or records a
// coalesced hint satisfying its next WaitSignal otherwise. Signalling a
// finished process is a no-op. Signal must be called from simulation context
// (an event callback or another running process).
func (p *Proc) Signal() {
	switch p.state {
	case procParked:
		p.state = procReady
		// schedNow, not now: between parallel windows the controller signals
		// procs whose shard clock lags the global clock; the wake must land
		// at the controller's time, exactly as it would sequentially.
		p.k.scheduleProc(p, p.k.schedNow())
	case procDone:
		// Nothing to wake.
	default:
		p.sig = true
	}
}
