package sim

import (
	"errors"
	"testing"
)

func TestCallbacksRunInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %v, want 30", k.Now())
	}
}

func TestSameTimeCallbacksRunFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time callbacks out of FIFO order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at Time
	k.At(100, func() {
		k.After(50, func() { at = k.Now() })
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestRunDeadlineStopsEarly(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(1000, func() { fired = true })
	if err := k.Run(500); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event after deadline fired")
	}
	if k.Now() != 500 {
		t.Fatalf("clock = %v, want deadline 500", k.Now())
	}
}

func TestStopHaltsLoop(t *testing.T) {
	k := NewKernel()
	count := 0
	k.At(1, func() { count++; k.Stop() })
	k.At(2, func() { count++ })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("ran %d events after Stop, want 1", count)
	}
}

func TestPastEventPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestProcAdvanceInterleavesByTime(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Advance(100)
		order = append(order, "a100")
		p.Advance(100)
		order = append(order, "a200")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Advance(150)
		order = append(order, "b150")
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a100", "b150", "a200"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAdvanceZeroDoesNotYield(t *testing.T) {
	k := NewKernel()
	steps := 0
	k.Spawn("p", func(p *Proc) {
		before := p.Now()
		p.Advance(0)
		p.Advance(-5)
		if p.Now() != before {
			t.Error("non-positive Advance moved the clock")
		}
		steps++
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Fatal("process did not complete")
	}
}

func TestParkAndSignal(t *testing.T) {
	k := NewKernel()
	var wokenAt Time
	p := k.Spawn("sleeper", func(p *Proc) {
		p.WaitSignal()
		wokenAt = p.Now()
	})
	k.At(500, func() { p.Signal() })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 500 {
		t.Fatalf("woken at %v, want 500", wokenAt)
	}
}

func TestSignalBeforeWaitIsCoalesced(t *testing.T) {
	k := NewKernel()
	completed := false
	p := k.Spawn("p", func(p *Proc) {
		p.Advance(100) // signal arrives while we are runnable
		p.WaitSignal() // should not block
		completed = true
	})
	k.At(50, func() { p.Signal() })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("coalesced signal was lost; process never completed")
	}
}

func TestSignalFinishedProcIsNoop(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("p", func(p *Proc) {})
	k.At(10, func() { p.Signal() })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("process not done")
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) {
		p.WaitSignal() // nobody will ever signal
	})
	err := k.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestProcToProcSignal(t *testing.T) {
	k := NewKernel()
	var log []string
	var consumer *Proc
	consumer = k.Spawn("consumer", func(p *Proc) {
		p.WaitSignal()
		log = append(log, "consumed")
	})
	k.Spawn("producer", func(p *Proc) {
		p.Advance(10)
		log = append(log, "produced")
		consumer.Signal()
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || log[0] != "produced" || log[1] != "consumed" {
		t.Fatalf("log = %v", log)
	}
}

// Determinism: two identical simulations produce identical event traces.
func TestDeterminism(t *testing.T) {
	runOnce := func() []Time {
		k := NewKernel()
		var trace []Time
		rng := NewRNG(42)
		for i := 0; i < 4; i++ {
			k.Spawn("worker", func(p *Proc) {
				for j := 0; j < 50; j++ {
					p.Advance(Duration(rng.Intn(100) + 1))
					trace = append(trace, p.Now())
				}
			})
		}
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestManyProcsCompleteAndClockMonotonic(t *testing.T) {
	k := NewKernel()
	const n = 64
	done := 0
	last := Time(0)
	for i := 0; i < n; i++ {
		d := Duration(i + 1)
		k.Spawn("w", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Advance(d)
				if p.Now() < last {
					t.Error("virtual clock went backwards")
				}
				last = p.Now()
			}
			done++
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("%d of %d procs completed", done, n)
	}
}
