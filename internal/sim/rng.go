package sim

// RNG is a small, fast, seedable pseudo-random generator (xorshift64*),
// used by workload generators so simulated experiments are reproducible
// without pulling in math/rand global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed nonzero constant, since xorshift has an all-zeroes fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
