package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapPopsInTimeOrder(t *testing.T) {
	var h eventHeap
	times := []Time{50, 10, 30, 10, 90, 0, 30, 70}
	for i, at := range times {
		h.push(event{at: at, seq: uint64(i)})
	}
	want := append([]Time(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		got := h.pop()
		if got.at != w {
			t.Fatalf("pop %d: got time %d, want %d", i, got.at, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty after draining: len=%d", h.Len())
	}
}

func TestHeapTiesBreakFIFO(t *testing.T) {
	var h eventHeap
	const n = 20
	for i := 0; i < n; i++ {
		h.push(event{at: 5, seq: uint64(i)})
	}
	for i := 0; i < n; i++ {
		got := h.pop()
		if got.seq != uint64(i) {
			t.Fatalf("tie at same time broke FIFO: pop %d has seq %d", i, got.seq)
		}
	}
}

// Property: any interleaving of pushes then full drain yields a sequence
// sorted by (time, seq).
func TestHeapOrderProperty(t *testing.T) {
	f := func(raw []int16) bool {
		var h eventHeap
		for i, v := range raw {
			h.push(event{at: Time(v), seq: uint64(i)})
		}
		prev := event{at: -1 << 30}
		for h.Len() > 0 {
			e := h.pop()
			if e.at < prev.at || (e.at == prev.at && e.seq < prev.seq) {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved pushes and pops never violate the min-heap contract:
// every pop returns a time <= any element remaining in the heap.
func TestHeapInterleavedProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var h eventHeap
		seq := uint64(0)
		for _, op := range ops {
			if op%3 != 0 || h.Len() == 0 {
				seq++
				h.push(event{at: Time(op) * 7, seq: seq})
				continue
			}
			got := h.pop()
			for _, rest := range h.ev {
				if rest.at < got.at {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
