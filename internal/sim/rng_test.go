package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64InRange(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n % 64)
		p := NewRNG(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(3 * Millisecond)
	if tm.Millis() != 3 {
		t.Fatalf("Millis = %v, want 3", tm.Millis())
	}
	if tm.Micros() != 3000 {
		t.Fatalf("Micros = %v, want 3000", tm.Micros())
	}
	if d := tm.Sub(Time(Millisecond)); d != 2*Millisecond {
		t.Fatalf("Sub = %v, want 2ms", d)
	}
	if got := (10 * Microsecond).Scale(2.5); got != 25*Microsecond {
		t.Fatalf("Scale = %v, want 25us", got)
	}
	if s := Time(1500).String(); s != "1.500us" {
		t.Fatalf("String = %q", s)
	}
	if s := Duration(2500).String(); s != "2.500us" {
		t.Fatalf("Duration String = %q", s)
	}
}
