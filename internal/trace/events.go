package trace

import (
	"fmt"
	"strings"
	"sync"

	"chant/internal/sim"
)

// EventKind classifies scheduler and messaging events for the debug log.
type EventKind uint8

// Event kinds recorded by the runtime when a Log is attached.
const (
	EvSpawn EventKind = iota
	EvSwitchIn
	EvPartialSwitch
	EvYieldFast
	EvBlock
	EvUnblock
	EvExit
	EvCancel
	EvIdle
)

func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvSwitchIn:
		return "switch-in"
	case EvPartialSwitch:
		return "partial-switch"
	case EvYieldFast:
		return "yield-fast"
	case EvBlock:
		return "block"
	case EvUnblock:
		return "unblock"
	case EvExit:
		return "exit"
	case EvCancel:
		return "cancel"
	case EvIdle:
		return "idle"
	}
	return "invalid"
}

// Event is one recorded occurrence.
type Event struct {
	At     sim.Time
	Kind   EventKind
	Thread int32
}

// Log is a fixed-capacity ring of the most recent events, cheap enough to
// keep attached while debugging scheduler behaviour. The zero Log is
// disabled; create one with NewLog. Safe for concurrent append (real-mode
// transports may record from other goroutines).
type Log struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

// NewLog creates a log retaining the last capacity events.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{ring: make([]Event, 0, capacity)}
}

// Add records an event. Nil logs drop it, so call sites need no guards.
func (l *Log) Add(at sim.Time, kind EventKind, thread int32) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Event{At: at, Kind: kind, Thread: thread}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % cap(l.ring)
	}
	l.total++
}

// Total reports how many events were ever recorded (including evicted).
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained events, oldest first.
func (l *Log) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		return append(out, l.ring...)
	}
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}

// Dump renders the retained events one per line, for test failures and
// debugging sessions.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, e := range l.Snapshot() {
		fmt.Fprintf(&b, "%12.3fus  %-14s t%d\n", e.At.Micros(), e.Kind, e.Thread)
	}
	return b.String()
}
