package trace_test

import (
	"runtime"
	"sync"
	"testing"

	"chant/internal/machine"
	"chant/internal/trace"
	"chant/internal/ult"
)

// TestCountersSharedAcrossRealSchedulers hammers one Counters from several
// real-mode schedulers running concurrently — the sharing pattern a
// multi-process real run produces — while another goroutine snapshots it
// the whole time. Run under -race this proves Snap needs no lock against
// the atomic adders; the final snapshot checks no increment was lost.
func TestCountersSharedAcrossRealSchedulers(t *testing.T) {
	var c trace.Counters
	const scheds = 4
	const workers = 200

	done := make(chan struct{})
	var snapper sync.WaitGroup
	snapper.Add(1)
	go func() {
		defer snapper.Done()
		for {
			select {
			case <-done:
				return
			default:
				var sum trace.Snapshot
				sum.Add(c.Snap(0))
				if sum.ThreadsCreated > scheds*(workers+1) {
					t.Error("snapshot observed more threads than ever created")
					return
				}
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < scheds; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := ult.NewSched(machine.NewRealHost(machine.Modern()), &c,
				ult.Options{Name: "race-test", IdleBlock: true})
			err := s.Run(func() {
				for j := 0; j < workers; j++ {
					s.Spawn("w", func() { s.Yield() })
				}
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	close(done)
	snapper.Wait()

	snap := c.Snap(0)
	if want := uint64(scheds * (workers + 1)); snap.ThreadsCreated != want {
		t.Errorf("ThreadsCreated = %d, want %d (concurrent adds lost)", snap.ThreadsCreated, want)
	}
	if want := uint64(scheds * workers); snap.Yields != want {
		t.Errorf("Yields = %d, want %d (concurrent adds lost)", snap.Yields, want)
	}
}
