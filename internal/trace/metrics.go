// The metrics registry: live Counters exposed as Prometheus text format
// and expvar. A scrape reads the registered Counters *at scrape time*
// through the SnapshotFields table — the registry holds pointers, never
// accumulated copies, so there is no second ledger to fall out of sync
// with recovery's Preload (a restored process's counters already carry
// their pre-crash history; summing a stale registration on top would
// double-count it, which is why Register replaces rather than appends when
// a label re-registers — exactly what happens when a PE restarts).
package trace

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"chant/internal/sim"
)

// Registry maps labels (conventionally the process address, "pe.proc") to
// live Counters. It implements http.Handler, serving Prometheus text.
type Registry struct {
	// Now supplies the snapshot end time for the waiting-thread average;
	// nil means "no clock", which reports AvgWaiting as 0.
	Now func() sim.Time

	mu    sync.Mutex
	procs map[string]*Counters
}

// NewRegistry returns an empty registry whose AvgWaiting window ends at
// now() (pass nil when no host clock is available).
func NewRegistry(now func() sim.Time) *Registry {
	return &Registry{Now: now, procs: make(map[string]*Counters)}
}

// Register adds (or replaces) the counters exported under label. Replacing
// is load-bearing for recovery: a restarted process re-registers its fresh,
// Preload-ed Counters under the same address, and the stale registration
// from its previous life must stop being scraped or its history would be
// counted twice.
func (r *Registry) Register(label string, c *Counters) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.procs[label] = c
	r.mu.Unlock()
}

// gather snapshots every registered process, sorted by label.
func (r *Registry) gather() (labels []string, snaps []Snapshot) {
	var end sim.Time
	if r.Now != nil {
		end = r.Now()
	}
	r.mu.Lock()
	for label := range r.procs {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		snaps = append(snaps, r.procs[label].Snap(end))
	}
	r.mu.Unlock()
	return labels, snaps
}

// WritePrometheus writes every Snapshot field for every registered process
// in Prometheus text exposition format, one series per (field, process).
func (r *Registry) WritePrometheus(w io.Writer) error {
	labels, snaps := r.gather()
	for _, f := range SnapshotFields {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.Name, f.Help, f.Name, f.Kind); err != nil {
			return err
		}
		for i, label := range labels {
			if _, err := fmt.Fprintf(w, "%s{proc=%q} %g\n",
				f.Name, label, f.Value(&snaps[i])); err != nil {
				return err
			}
		}
	}
	return nil
}

// ServeHTTP makes the registry a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}

// ExpvarSnapshot returns the registry as nested maps
// (proc → field → value), shaped for expvar.Func under /debug/vars.
func (r *Registry) ExpvarSnapshot() any {
	labels, snaps := r.gather()
	out := make(map[string]map[string]float64, len(labels))
	for i, label := range labels {
		m := make(map[string]float64, len(SnapshotFields))
		for _, f := range SnapshotFields {
			m[f.Field] = f.Value(&snaps[i])
		}
		out[label] = m
	}
	return out
}
