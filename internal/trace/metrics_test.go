package trace

import (
	"reflect"
	"strings"
	"testing"

	"chant/internal/sim"
)

// TestSnapshotFieldsComplete is the "generated table" contract: every field
// of Snapshot must have exactly one row in SnapshotFields (this test is the
// only reflection on the metrics path; scrapes stay table-driven).
func TestSnapshotFieldsComplete(t *testing.T) {
	covered := map[string]int{}
	names := map[string]bool{}
	for _, f := range SnapshotFields {
		covered[f.Field]++
		if names[f.Name] {
			t.Errorf("duplicate metric name %q", f.Name)
		}
		names[f.Name] = true
		if !strings.HasPrefix(f.Name, "chant_") {
			t.Errorf("metric %q missing chant_ prefix", f.Name)
		}
		if f.Kind == MetricCounter && !strings.HasSuffix(f.Name, "_total") {
			t.Errorf("counter %q missing _total suffix", f.Name)
		}
		if f.Help == "" {
			t.Errorf("field %s has no help text", f.Field)
		}
	}
	st := reflect.TypeOf(Snapshot{})
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		if covered[name] != 1 {
			t.Errorf("Snapshot field %s has %d table rows, want 1 — update SnapshotFields in fields.go", name, covered[name])
		}
		delete(covered, name)
	}
	for name := range covered {
		t.Errorf("SnapshotFields row %s has no Snapshot field", name)
	}
}

// TestFieldValuesReadTheRightField cross-checks the hand-written getters
// against reflection: bump one field at a time and confirm only its table
// row moves.
func TestFieldValuesReadTheRightField(t *testing.T) {
	st := reflect.TypeOf(Snapshot{})
	for i := 0; i < st.NumField(); i++ {
		var s Snapshot
		fv := reflect.ValueOf(&s).Elem().Field(i)
		switch fv.Kind() {
		case reflect.Uint64:
			fv.SetUint(7)
		case reflect.Float64:
			fv.SetFloat(7)
		case reflect.Int:
			fv.SetInt(7)
		default:
			t.Fatalf("unhandled Snapshot field kind %s", fv.Kind())
		}
		for _, f := range SnapshotFields {
			want := 0.0
			if f.Field == st.Field(i).Name {
				want = 7
			}
			if got := f.Value(&s); got != want {
				t.Errorf("with %s=7, table row %s reads %g, want %g",
					st.Field(i).Name, f.Field, got, want)
			}
		}
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	reg := NewRegistry(func() sim.Time { return us(100) })
	var c Counters
	c.Sends.Add(3)
	c.BytesSent.Add(192)
	c.WaitBegin(us(0))
	reg.Register("0.0", &c)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP chant_sends_total",
		"# TYPE chant_sends_total counter",
		`chant_sends_total{proc="0.0"} 3`,
		`chant_bytes_sent_total{proc="0.0"} 192`,
		"# TYPE chant_avg_waiting_threads gauge",
		`chant_avg_waiting_threads{proc="0.0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	// Every table row appears.
	for _, f := range SnapshotFields {
		if !strings.Contains(out, f.Name+`{proc="0.0"}`) {
			t.Errorf("metric %s not exported", f.Name)
		}
	}
}

// TestRegistryRestoreNoDoubleCount is the Preload/export audit: a restarted
// process re-registers fresh Counters preloaded with its checkpoint under
// the same label. The registry must replace the dead registration — if both
// lives were scraped, the pre-crash history (carried inside the preloaded
// counters) would be counted twice.
func TestRegistryRestoreNoDoubleCount(t *testing.T) {
	reg := NewRegistry(nil)

	var life1 Counters
	life1.Sends.Add(10)
	reg.Register("1.0", &life1)

	// Crash: checkpoint the counters, restore into a fresh Counters.
	cp := life1.Snap(0)
	var life2 Counters
	life2.Preload(cp)
	life2.Restarts.Add(1)
	reg.Register("1.0", &life2)
	life2.Sends.Add(5) // post-restore traffic

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, `chant_sends_total{proc="1.0"}`) != 1 {
		t.Fatalf("restarted process exported more than once:\n%s", out)
	}
	if !strings.Contains(out, `chant_sends_total{proc="1.0"} 15`) {
		t.Fatalf("want preloaded 10 + new 5 = 15 sends, got:\n%s", out)
	}
	if !strings.Contains(out, `chant_restarts_total{proc="1.0"} 1`) {
		t.Fatalf("restart not visible:\n%s", out)
	}
}

func TestRegistryExpvarSnapshot(t *testing.T) {
	reg := NewRegistry(nil)
	var c Counters
	c.Recvs.Add(2)
	reg.Register("0.0", &c)
	m, ok := reg.ExpvarSnapshot().(map[string]map[string]float64)
	if !ok {
		t.Fatalf("ExpvarSnapshot type %T", reg.ExpvarSnapshot())
	}
	if m["0.0"]["Recvs"] != 2 {
		t.Fatalf("expvar Recvs = %v, want 2", m["0.0"]["Recvs"])
	}
	if len(m["0.0"]) != len(SnapshotFields) {
		t.Fatalf("expvar has %d fields, want %d", len(m["0.0"]), len(SnapshotFields))
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var reg *Registry
	reg.Register("x", &Counters{}) // must not panic
}
