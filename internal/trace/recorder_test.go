package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRecorderSingleRingRoundTrip(t *testing.T) {
	r := NewRecorder(2, 8)
	want := Span{Kind: SpanSend, PE: 1, TID: 3, Begin: us(10), End: us(20), Arg: 64}
	r.Record(1, want)
	got := r.Snapshot()
	if len(got) != 1 || got[0] != want {
		t.Fatalf("Snapshot = %+v, want [%+v]", got, want)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestRecorderPacksEndpointTID(t *testing.T) {
	r := NewRecorder(1, 8)
	r.Record(0, Span{Kind: SpanIngressDrain, PE: 0, TID: EndpointTID, Begin: us(1), End: us(2), Arg: 5})
	got := r.Snapshot()
	if len(got) != 1 || got[0].TID != EndpointTID {
		t.Fatalf("TID round trip = %+v, want TID %d", got, EndpointTID)
	}
}

func TestRecorderWrapDrops(t *testing.T) {
	r := NewRecorder(1, 4)
	for i := 0; i < 10; i++ {
		r.Record(0, Span{Kind: SpanRun, Begin: us(int64(i)), End: us(int64(i) + 1)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot kept %d spans, want 4 (ring capacity)", len(got))
	}
	// The survivors are the newest four.
	for i, s := range got {
		if want := us(int64(6 + i)); s.Begin != want {
			t.Fatalf("span %d Begin = %v, want %v", i, s.Begin, want)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
}

func TestRecorderOutOfRangePEClamps(t *testing.T) {
	r := NewRecorder(2, 4)
	r.Record(-1, Span{Kind: SpanRun})
	r.Record(99, Span{Kind: SpanRun})
	if got := len(r.Snapshot()); got != 2 {
		t.Fatalf("Snapshot = %d spans, want 2", got)
	}
}

// TestRecorderConcurrentWritersAndSnapshots is the flight-recorder
// concurrency test: 8 writers hammer a deliberately tiny recorder while a
// reader snapshots mid-churn. Under -race this proves the seqlock protocol
// presents no data race; the value checks prove a snapshot never yields a
// torn span (every observed record is one a writer actually published:
// End == Begin+1 and Arg == uint64(Begin)).
func TestRecorderConcurrentWritersAndSnapshots(t *testing.T) {
	const writers = 8
	const perWriter = 4096
	r := NewRecorder(4, 64) // small rings force constant wrap
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				begin := us(int64(w*perWriter + i))
				r.Record(w%4, Span{
					Kind:  SpanSend,
					PE:    int32(w % 4),
					TID:   int32(w),
					Begin: begin,
					End:   begin + 1,
					Arg:   uint64(begin),
				})
			}
		}(w)
	}
	var snapshots int
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for !stop.Load() {
			for _, s := range r.Snapshot() {
				if s.End != s.Begin+1 || s.Arg != uint64(s.Begin) {
					t.Errorf("torn span observed: %+v", s)
					return
				}
			}
			snapshots++
		}
	}()
	wg.Wait()
	stop.Store(true)
	readerWg.Wait()
	if snapshots == 0 {
		t.Fatal("reader never completed a snapshot")
	}
	if got := len(r.Snapshot()); got == 0 {
		t.Fatal("final snapshot empty")
	}
	if r.Dropped() == 0 {
		t.Fatal("tiny rings under 8 writers should have wrapped")
	}
}
