package trace

import (
	"strings"
	"sync"
	"testing"

	"chant/internal/sim"
)

func TestLogRetainsInOrder(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 5; i++ {
		l.Add(sim.Time(i), EvSwitchIn, int32(i))
	}
	snap := l.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("retained %d of 5", len(snap))
	}
	for i, e := range snap {
		if e.Thread != int32(i) {
			t.Fatalf("order broken: %v", snap)
		}
	}
}

func TestLogRingEviction(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Add(sim.Time(i), EvBlock, int32(i))
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d, want 4", len(snap))
	}
	for i, e := range snap {
		if e.Thread != int32(6+i) {
			t.Fatalf("eviction kept wrong events: %v", snap)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, EvSpawn, 0) // must not panic
	if l.Snapshot() != nil || l.Total() != 0 {
		t.Fatal("nil log returned data")
	}
}

func TestLogDump(t *testing.T) {
	l := NewLog(4)
	l.Add(sim.Time(1500), EvSpawn, 3)
	l.Add(sim.Time(2500), EvUnblock, 4)
	out := l.Dump()
	if !strings.Contains(out, "spawn") || !strings.Contains(out, "t3") ||
		!strings.Contains(out, "unblock") {
		t.Fatalf("dump missing content:\n%s", out)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvSpawn, EvSwitchIn, EvPartialSwitch, EvYieldFast,
		EvBlock, EvUnblock, EvExit, EvCancel, EvIdle}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "invalid" || seen[s] {
			t.Errorf("kind %d stringifies badly: %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "invalid" {
		t.Error("unknown kind not flagged")
	}
}

func TestLogConcurrentAppend(t *testing.T) {
	l := NewLog(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Add(sim.Time(i), EvSwitchIn, 0)
			}
		}()
	}
	wg.Wait()
	if l.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", l.Total())
	}
	if len(l.Snapshot()) != 128 {
		t.Fatalf("retained %d, want 128", len(l.Snapshot()))
	}
}

func TestLogDefaultCapacity(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 2000; i++ {
		l.Add(sim.Time(i), EvExit, 0)
	}
	if got := len(l.Snapshot()); got != 1024 {
		t.Fatalf("default capacity retained %d, want 1024", got)
	}
}
