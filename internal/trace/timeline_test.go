package trace

import (
	"strings"
	"testing"
)

func TestTimelineEmpty(t *testing.T) {
	if out := Timeline(nil, 40); !strings.Contains(out, "no events") {
		t.Fatalf("empty timeline: %q", out)
	}
}

func TestTimelineBasicAlternation(t *testing.T) {
	events := []Event{
		{At: us(0), Kind: EvSpawn, Thread: 0},
		{At: us(0), Kind: EvSpawn, Thread: 1},
		{At: us(0), Kind: EvSwitchIn, Thread: 0},
		{At: us(50), Kind: EvSwitchIn, Thread: 1},
		{At: us(100), Kind: EvSwitchIn, Thread: 0},
		{At: us(150), Kind: EvExit, Thread: 0},
		{At: us(150), Kind: EvSwitchIn, Thread: 1},
		{At: us(200), Kind: EvExit, Thread: 1},
	}
	out := Timeline(events, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 threads
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "t0") || !strings.HasPrefix(lines[2], "t1") {
		t.Fatalf("rows mislabeled:\n%s", out)
	}
	// Thread 0 ran in the first quarter; thread 1 in the second.
	row0 := lines[1][strings.Index(lines[1], "|")+1:]
	row1 := lines[2][strings.Index(lines[2], "|")+1:]
	if row0[0] != '#' {
		t.Errorf("t0 not running at start:\n%s", out)
	}
	if row1[12] != '#' { // ~30% through: thread 1's first slot
		t.Errorf("t1 not running in its slot:\n%s", out)
	}
	if row0[1] == '#' && row1[1] == '#' {
		t.Errorf("both threads running in one early bucket:\n%s", out)
	}
}

func TestTimelineShowsLifecycle(t *testing.T) {
	events := []Event{
		{At: us(0), Kind: EvSpawn, Thread: 0},
		{At: us(0), Kind: EvSwitchIn, Thread: 0},
		{At: us(400), Kind: EvSpawn, Thread: 7}, // born late
		{At: us(500), Kind: EvSwitchIn, Thread: 7},
		{At: us(600), Kind: EvExit, Thread: 7},
		{At: us(1000), Kind: EvExit, Thread: 0},
	}
	out := Timeline(events, 50)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	row7 := lines[2][strings.Index(lines[2], "|")+1:]
	if row7[0] != ' ' {
		t.Errorf("t7 shown before its spawn:\n%s", out)
	}
	if row7[len(row7)-2] != ' ' {
		t.Errorf("t7 shown after its exit:\n%s", out)
	}
	if !strings.Contains(row7, "#") {
		t.Errorf("t7 never shown running:\n%s", out)
	}
}

func TestTimelineFromRealSchedulerLog(t *testing.T) {
	// End-to-end: events recorded by an actual scheduler render cleanly.
	log := NewLog(4096)
	// Simulate the wiring by hand (the ult integration test covers the
	// real scheduler); here a synthetic interleaving.
	for i := int32(0); i < 3; i++ {
		log.Add(us(int64(i)), EvSpawn, i)
	}
	at := int64(10)
	for round := 0; round < 5; round++ {
		for i := int32(0); i < 3; i++ {
			log.Add(us(at), EvSwitchIn, i)
			at += 20
		}
	}
	for i := int32(0); i < 3; i++ {
		log.Add(us(at), EvExit, i)
	}
	out := Timeline(log.Snapshot(), 60)
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("unexpected shape:\n%s", out)
	}
	for _, row := range strings.Split(out, "\n")[1:4] {
		if !strings.Contains(row, "#") {
			t.Errorf("thread with no running time:\n%s", out)
		}
	}
}

func TestTimelineDefaultWidth(t *testing.T) {
	events := []Event{
		{At: us(0), Kind: EvSwitchIn, Thread: 0},
		{At: us(10), Kind: EvExit, Thread: 0},
	}
	out := Timeline(events, 0)
	line := strings.Split(out, "\n")[1]
	inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
	if len(inner) != 72 {
		t.Fatalf("default width = %d, want 72", len(inner))
	}
}

func TestTimelineEventExactlyAtEnd(t *testing.T) {
	// The last event sits exactly at the window end: its bucket index is
	// width on the half-open grid and must clamp to the last column, not
	// index out of range.
	events := []Event{
		{At: us(0), Kind: EvSpawn, Thread: 0},
		{At: us(0), Kind: EvSwitchIn, Thread: 0},
		{At: us(100), Kind: EvSwitchIn, Thread: 0}, // switch-in at end
	}
	out := Timeline(events, 10)
	row := strings.Split(out, "\n")[1]
	inner := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if len(inner) != 10 {
		t.Fatalf("row width = %d, want 10:\n%s", len(inner), out)
	}
	if inner[9] != '#' {
		t.Errorf("final bucket not marked running:\n%s", out)
	}
}

func TestTimelineSingleEvent(t *testing.T) {
	// A one-event log has a zero-length window (end is bumped to
	// start+1); it must render one in-range row.
	out := Timeline([]Event{{At: us(7), Kind: EvSwitchIn, Thread: 3}}, 8)
	if !strings.Contains(out, "t3") {
		t.Fatalf("missing thread row:\n%s", out)
	}
	row := strings.Split(out, "\n")[1]
	inner := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if len(inner) != 8 || !strings.Contains(inner, "#") {
		t.Fatalf("single-event render wrong: %q", inner)
	}
}

func TestTimelineAllEventsSameInstant(t *testing.T) {
	events := []Event{
		{At: us(5), Kind: EvSpawn, Thread: 0},
		{At: us(5), Kind: EvSwitchIn, Thread: 0},
		{At: us(5), Kind: EvExit, Thread: 0},
	}
	out := Timeline(events, 4) // must not panic; whole life in bucket 0
	if !strings.Contains(out, "#") {
		t.Fatalf("no running mark:\n%s", out)
	}
}

func TestTimelineWidthOne(t *testing.T) {
	events := []Event{
		{At: us(0), Kind: EvSwitchIn, Thread: 0},
		{At: us(10), Kind: EvSwitchIn, Thread: 1},
		{At: us(20), Kind: EvExit, Thread: 1},
	}
	out := Timeline(events, 1)
	for _, row := range strings.Split(strings.TrimRight(out, "\n"), "\n")[1:] {
		inner := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
		if len(inner) != 1 {
			t.Fatalf("width-1 row = %q:\n%s", inner, out)
		}
	}
}

func TestTimelineUnsortedRetroactiveEvents(t *testing.T) {
	// Logs are emission-ordered, not time-ordered: a retroactive stamp
	// can place a later entry before an earlier one. The renderer must
	// tolerate the inversion (segments may be approximated, never panic).
	events := []Event{
		{At: us(50), Kind: EvSwitchIn, Thread: 0},
		{At: us(10), Kind: EvBlock, Thread: 0}, // stamped in the past
		{At: us(60), Kind: EvSwitchIn, Thread: 1},
		{At: us(100), Kind: EvExit, Thread: 1},
	}
	out := Timeline(events, 16)
	if !strings.Contains(out, "t0") || !strings.Contains(out, "t1") {
		t.Fatalf("missing rows:\n%s", out)
	}
}
