// The flight recorder: the real-mode backing store for the Tracer. The
// mutexed event Log is fine under the simulation kernel, where emission
// order *is* the determinism contract, but a mutex per record on the
// real-mode data plane would serialize exactly the PEs being measured. The
// recorder instead keeps one fixed-size ring per PE, written lock-free and
// read by a snapshot merge that never stops the writers.
//
// Memory model. Each slot is five atomic words: a sequence word and four
// payload words (packed kind/PE/TID, begin, end, arg). A writer claims a
// position with a CAS on the ring cursor — each ring is nominally
// single-writer (its PE's worker goroutine), the CAS covers the rare
// transport-side emitter landing on a peer's ring — then publishes with a
// seqlock protocol: seq←0 (slot invalid), payload stores, seq←position+1.
// A reader accepts a slot only if seq reads position+1 both before and
// after the payload loads; a torn or overwritten slot is simply skipped.
// Every access is a sync/atomic operation, so the race detector sees a
// clean execution, and the only loop — the CAS claim — is lock-free
// forward progress, which detlint's bounded-spin check exempts.
//
// The recorder is lossy by design: once a ring laps, the oldest spans are
// overwritten and counted in Dropped. A flight recorder answers "what just
// happened", not "everything that ever happened".
package trace

import (
	"sync/atomic"

	"chant/internal/sim"
)

// DefaultRingSlots is the per-PE ring capacity when the caller passes 0.
const DefaultRingSlots = 1 << 14

// Recorder is a set of per-PE lock-free span rings.
type Recorder struct {
	rings []ring
}

// ring is one PE's span buffer. pos counts claims ever made; slot i holds
// the record claimed at position p where p&mask == i.
type ring struct {
	pos  atomic.Uint64
	mask uint64
	slot []slot
	// pad keeps neighbouring rings' cursors off one cache line, so PEs
	// recording concurrently do not false-share.
	_ [40]byte
}

// slot is one published span: a seqlock word plus the packed payload.
type slot struct {
	seq atomic.Uint64
	w0  atomic.Uint64 // kind<<56 | pe<<32 | uint32(tid)
	w1  atomic.Uint64 // begin (ns)
	w2  atomic.Uint64 // end (ns)
	w3  atomic.Uint64 // arg
}

// NewRecorder builds a recorder with one ring per PE, each holding
// slotsPerRing spans rounded up to a power of two (0 selects
// DefaultRingSlots).
func NewRecorder(pes, slotsPerRing int) *Recorder {
	if pes < 1 {
		pes = 1
	}
	if slotsPerRing <= 0 {
		slotsPerRing = DefaultRingSlots
	}
	n := 1
	for n < slotsPerRing {
		n <<= 1
	}
	r := &Recorder{rings: make([]ring, pes)}
	for i := range r.rings {
		r.rings[i].slot = make([]slot, n)
		r.rings[i].mask = uint64(n - 1)
	}
	return r
}

// Record publishes one span on the ring for pe (clamped into range, so a
// span from an unexpected PE lands somewhere rather than panicking).
func (r *Recorder) Record(pe int, s Span) {
	if pe < 0 || pe >= len(r.rings) {
		pe = len(r.rings) - 1
	}
	rg := &r.rings[pe]
	var p uint64
	for {
		p = rg.pos.Load()
		if rg.pos.CompareAndSwap(p, p+1) {
			break
		}
	}
	sl := &rg.slot[p&rg.mask]
	sl.seq.Store(0)
	sl.w0.Store(uint64(s.Kind)<<56 | uint64(uint32(s.PE)&0xffffff)<<32 | uint64(uint32(s.TID)))
	sl.w1.Store(uint64(s.Begin))
	sl.w2.Store(uint64(s.End))
	sl.w3.Store(s.Arg)
	sl.seq.Store(p + 1)
}

// Snapshot merges every ring's currently published spans. It runs
// concurrently with writers: slots being rewritten or already lapped
// during the read are skipped, never blocked on.
func (r *Recorder) Snapshot() []Span {
	var out []Span
	for i := range r.rings {
		rg := &r.rings[i]
		head := rg.pos.Load()
		n := uint64(len(rg.slot))
		if head < n {
			n = head
		}
		for p := head - n; p < head; p++ {
			sl := &rg.slot[p&rg.mask]
			if sl.seq.Load() != p+1 {
				continue // mid-write or overwritten
			}
			w0, w1, w2, w3 := sl.w0.Load(), sl.w1.Load(), sl.w2.Load(), sl.w3.Load()
			if sl.seq.Load() != p+1 {
				continue // torn: a writer lapped us between the loads
			}
			out = append(out, Span{
				Kind:  SpanKind(w0 >> 56),
				PE:    int32((w0 >> 32) & 0xffffff),
				TID:   int32(uint32(w0)),
				Begin: sim.Time(int64(w1)),
				End:   sim.Time(int64(w2)),
				Arg:   w3,
			})
		}
	}
	return out
}

// Dropped reports how many spans have been overwritten by ring wrap across
// all rings (a lower bound while writers are active).
func (r *Recorder) Dropped() uint64 {
	var d uint64
	for i := range r.rings {
		rg := &r.rings[i]
		if head := rg.pos.Load(); head > uint64(len(rg.slot)) {
			d += head - uint64(len(rg.slot))
		}
	}
	return d
}
