// The metric field table: one entry per Snapshot field, written out by hand
// so the metrics path needs no reflection (a scrape is a handful of atomic
// loads and a table walk). TestSnapshotFieldsComplete holds the table to
// the struct with reflection — adding a Snapshot field without a table row
// fails the build's tests, which is the "generated" discipline without a
// generator.
package trace

// MetricKind distinguishes monotonic counters from point-in-time gauges.
type MetricKind uint8

const (
	// MetricCounter is a monotonically increasing count.
	MetricCounter MetricKind = iota
	// MetricGauge is a value that can move both ways.
	MetricGauge
)

func (k MetricKind) String() string {
	if k == MetricGauge {
		return "gauge"
	}
	return "counter"
}

// MetricField maps one Snapshot field to its exported metric.
type MetricField struct {
	// Field is the Go field name in Snapshot (the coverage test's key).
	Field string
	// Name is the Prometheus series name.
	Name string
	// Kind selects the Prometheus TYPE line.
	Kind MetricKind
	// Help is the HELP line.
	Help string
	// Value reads the field from a snapshot.
	Value func(*Snapshot) float64
}

// SnapshotFields lists every Snapshot field in declaration order.
var SnapshotFields = []MetricField{
	{"FullSwitches", "chant_full_switches_total", MetricCounter, "complete context switches (restore of a different thread)", func(s *Snapshot) float64 { return float64(s.FullSwitches) }},
	{"PartialSwitches", "chant_partial_switches_total", MetricCounter, "TCB inspections without a restore (Scheduler polls (PS))", func(s *Snapshot) float64 { return float64(s.PartialSwitches) }},
	{"Yields", "chant_yields_total", MetricCounter, "yield calls", func(s *Snapshot) float64 { return float64(s.Yields) }},
	{"YieldsNoSwitch", "chant_yields_no_switch_total", MetricCounter, "yields that returned immediately (no other ready thread)", func(s *Snapshot) float64 { return float64(s.YieldsNoSwitch) }},
	{"IdleEntries", "chant_idle_entries_total", MetricCounter, "times the scheduler found nothing runnable", func(s *Snapshot) float64 { return float64(s.IdleEntries) }},
	{"ThreadsCreated", "chant_threads_created_total", MetricCounter, "threads created", func(s *Snapshot) float64 { return float64(s.ThreadsCreated) }},
	{"Sends", "chant_sends_total", MetricCounter, "messages sent", func(s *Snapshot) float64 { return float64(s.Sends) }},
	{"Recvs", "chant_recvs_total", MetricCounter, "completed receives", func(s *Snapshot) float64 { return float64(s.Recvs) }},
	{"RecvImmediate", "chant_recv_immediate_total", MetricCounter, "receives matched at post time", func(s *Snapshot) float64 { return float64(s.RecvImmediate) }},
	{"EarlyArrivals", "chant_early_arrivals_total", MetricCounter, "messages buffered in the unexpected queue", func(s *Snapshot) float64 { return float64(s.EarlyArrivals) }},
	{"BytesSent", "chant_bytes_sent_total", MetricCounter, "payload bytes sent", func(s *Snapshot) float64 { return float64(s.BytesSent) }},
	{"MsgTestCalls", "chant_msgtest_calls_total", MetricCounter, "msgtest attempts", func(s *Snapshot) float64 { return float64(s.MsgTestCalls) }},
	{"MsgTestFails", "chant_msgtest_fails_total", MetricCounter, "msgtest attempts that found the operation incomplete", func(s *Snapshot) float64 { return float64(s.MsgTestFails) }},
	{"TestAnyCalls", "chant_testany_calls_total", MetricCounter, "msgtestany calls", func(s *Snapshot) float64 { return float64(s.TestAnyCalls) }},
	{"TestAnyScanned", "chant_testany_scanned_total", MetricCounter, "outstanding requests examined across testany calls", func(s *Snapshot) float64 { return float64(s.TestAnyScanned) }},
	{"RSRRequests", "chant_rsr_requests_total", MetricCounter, "remote service requests served", func(s *Snapshot) float64 { return float64(s.RSRRequests) }},
	{"RSRSent", "chant_rsr_sent_total", MetricCounter, "remote service requests issued", func(s *Snapshot) float64 { return float64(s.RSRSent) }},
	{"NullsSent", "chant_nulls_sent_total", MetricCounter, "CMB null messages emitted", func(s *Snapshot) float64 { return float64(s.NullsSent) }},
	{"FaultDrops", "chant_fault_drops_total", MetricCounter, "outbound messages dropped by the fault plane", func(s *Snapshot) float64 { return float64(s.FaultDrops) }},
	{"FaultDups", "chant_fault_dups_total", MetricCounter, "outbound messages duplicated by the fault plane", func(s *Snapshot) float64 { return float64(s.FaultDups) }},
	{"FaultDelays", "chant_fault_delays_total", MetricCounter, "outbound messages delayed by the fault plane", func(s *Snapshot) float64 { return float64(s.FaultDelays) }},
	{"UnexpectedDropped", "chant_unexpected_dropped_total", MetricCounter, "messages dropped at the unexpected-queue cap", func(s *Snapshot) float64 { return float64(s.UnexpectedDropped) }},
	{"RecvTimeouts", "chant_recv_timeouts_total", MetricCounter, "receives abandoned by a deadline wait", func(s *Snapshot) float64 { return float64(s.RecvTimeouts) }},
	{"PeerDeadRecvs", "chant_peer_dead_recvs_total", MetricCounter, "receives failed because their peer was declared dead", func(s *Snapshot) float64 { return float64(s.PeerDeadRecvs) }},
	{"PeersDead", "chant_peers_dead_total", MetricCounter, "peers declared dead", func(s *Snapshot) float64 { return float64(s.PeersDead) }},
	{"RSRRetries", "chant_rsr_retries_total", MetricCounter, "RSR call attempts beyond the first", func(s *Snapshot) float64 { return float64(s.RSRRetries) }},
	{"RSRTimeouts", "chant_rsr_timeouts_total", MetricCounter, "RSR calls that exhausted their retry budget", func(s *Snapshot) float64 { return float64(s.RSRTimeouts) }},
	{"RSRDupsServed", "chant_rsr_dups_served_total", MetricCounter, "duplicate RSR requests answered from the dedup cache", func(s *Snapshot) float64 { return float64(s.RSRDupsServed) }},
	{"Checkpoints", "chant_checkpoints_total", MetricCounter, "coordinated snapshots finalized", func(s *Snapshot) float64 { return float64(s.Checkpoints) }},
	{"InFlightLogged", "chant_inflight_logged_total", MetricCounter, "in-flight messages recorded between marker arrivals", func(s *Snapshot) float64 { return float64(s.InFlightLogged) }},
	{"Restarts", "chant_restarts_total", MetricCounter, "restores from a checkpoint", func(s *Snapshot) float64 { return float64(s.Restarts) }},
	{"InFlightReplayed", "chant_inflight_replayed_total", MetricCounter, "logged messages re-delivered after a restore", func(s *Snapshot) float64 { return float64(s.InFlightReplayed) }},
	{"RejoinsServed", "chant_rejoins_served_total", MetricCounter, "rejoin announcements served", func(s *Snapshot) float64 { return float64(s.RejoinsServed) }},
	{"PeersRecovered", "chant_peers_recovered_total", MetricCounter, "peers moved from dead back to alive", func(s *Snapshot) float64 { return float64(s.PeersRecovered) }},
	{"AvgWaiting", "chant_avg_waiting_threads", MetricGauge, "time-averaged threads waiting on outstanding receives (Figure 13)", func(s *Snapshot) float64 { return s.AvgWaiting }},
	{"MaxWaiting", "chant_max_waiting_threads", MetricGauge, "peak simultaneously waiting threads", func(s *Snapshot) float64 { return float64(s.MaxWaiting) }},
}
