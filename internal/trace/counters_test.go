package trace

import (
	"math"
	"sync"
	"testing"

	"chant/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }

func TestWaitingIntegratorConstant(t *testing.T) {
	var c Counters
	c.WaitBegin(us(0))
	c.WaitBegin(us(0))
	// Two threads waiting for the whole window.
	if got := c.AvgWaiting(us(100)); math.Abs(got-2) > 1e-9 {
		t.Fatalf("AvgWaiting = %v, want 2", got)
	}
	if c.MaxWaiting() != 2 {
		t.Fatalf("MaxWaiting = %d, want 2", c.MaxWaiting())
	}
}

func TestWaitingIntegratorStep(t *testing.T) {
	var c Counters
	c.WaitBegin(us(0))  // 1 waiting over [0,50)
	c.WaitBegin(us(50)) // 2 waiting over [50,100)
	got := c.AvgWaiting(us(100))
	if math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("AvgWaiting = %v, want 1.5", got)
	}
}

func TestWaitingIntegratorEnd(t *testing.T) {
	var c Counters
	c.WaitBegin(us(0))
	c.WaitEnd(us(25)) // 1 waiting over [0,25), 0 over [25,100)
	got := c.AvgWaiting(us(100))
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("AvgWaiting = %v, want 0.25", got)
	}
	if c.CurWaiting() != 0 {
		t.Fatalf("CurWaiting = %d, want 0", c.CurWaiting())
	}
}

func TestWaitingNeverStartedIsZero(t *testing.T) {
	var c Counters
	if got := c.AvgWaiting(us(1000)); got != 0 {
		t.Fatalf("AvgWaiting with no waits = %v, want 0", got)
	}
}

func TestNegativeWaitingPanics(t *testing.T) {
	var c Counters
	defer func() {
		if recover() == nil {
			t.Error("WaitEnd below zero did not panic")
		}
	}()
	c.WaitEnd(us(1))
}

func TestSnapshotAdd(t *testing.T) {
	var a, b Counters
	a.MsgTestCalls.Add(10)
	a.FullSwitches.Add(3)
	b.MsgTestCalls.Add(5)
	b.MsgTestFails.Add(2)
	sa := a.Snap(us(100))
	sb := b.Snap(us(100))
	sa.Add(sb)
	if sa.MsgTestCalls != 15 || sa.FullSwitches != 3 || sa.MsgTestFails != 2 {
		t.Fatalf("summed snapshot wrong: %+v", sa)
	}
}

func TestSnapshotAddMaxWaiting(t *testing.T) {
	var a, b Counters
	a.WaitBegin(us(0))
	b.WaitBegin(us(0))
	b.WaitBegin(us(1))
	sa := a.Snap(us(10))
	sa.Add(b.Snap(us(10)))
	if sa.MaxWaiting != 2 {
		t.Fatalf("MaxWaiting after Add = %d, want 2", sa.MaxWaiting)
	}
}

func TestCountersConcurrentUpdates(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Sends.Add(1)
				c.MsgTestCalls.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Sends.Load(); got != 8000 {
		t.Fatalf("Sends = %d, want 8000", got)
	}
}

func TestWaitEndAtBeforeWindowClamped(t *testing.T) {
	// Regression: a completion stamped before the first wait event (e.g.
	// a receive handle that completed before any thread was integrated,
	// or a failure detector marking a peer dead in the past) used to
	// subtract [at, lastAt] without clamping at to startAt, driving the
	// Figure-13 integral negative.
	var c Counters
	c.WaitBegin(us(100))
	c.WaitEndAt(us(40)) // before the window even opened
	if got := c.AvgWaiting(us(200)); got < 0 {
		t.Fatalf("AvgWaiting = %v, want >= 0", got)
	}
	// The thread's waiting contribution is fully removed: average is 0.
	if got := c.AvgWaiting(us(200)); math.Abs(got) > 1e-9 {
		t.Fatalf("AvgWaiting = %v, want 0 (retroactive end removed the only wait)", got)
	}
}

func TestWaitEndAtRetroactiveExact(t *testing.T) {
	// Two threads wait from 0; one's receive completed at 25 but was only
	// observed at 50. True integral over [0,100]: one thread for 25us,
	// the other for 100us => avg 1.25.
	var c Counters
	c.WaitBegin(us(0))
	c.WaitBegin(us(0))
	c.WaitBegin(us(50)) // forces lastAt to 50 with 2 waiting over [0,50)
	c.WaitEnd(us(50))   // the helper thread leaves immediately
	c.WaitEndAt(us(25)) // retroactive completion inside the window
	got := c.AvgWaiting(us(100))
	if math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("AvgWaiting = %v, want 1.25", got)
	}
}

func TestAvgWaitingNeverNegative(t *testing.T) {
	// Brute adversarial sequence mixing forward updates and maximally
	// retroactive completions; the average must stay non-negative at
	// every probe point.
	var c Counters
	c.WaitBegin(us(1000))
	for i := 0; i < 8; i++ {
		c.WaitBegin(us(1000 + int64(i)*10))
	}
	for i := 0; i < 9; i++ {
		c.WaitEndAt(us(0)) // far before the window
		if got := c.AvgWaiting(us(2000)); got < 0 {
			t.Fatalf("AvgWaiting = %v after %d retroactive ends, want >= 0", got, i+1)
		}
	}
}
