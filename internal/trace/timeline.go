package trace

import (
	"fmt"
	"sort"
	"strings"

	"chant/internal/sim"
)

// Timeline reconstructs per-thread occupancy from a Log's events and
// renders it as an ASCII Gantt chart: one row per thread, one column per
// time bucket.
//
//	'#' the thread was running during (part of) the bucket
//	'.' the thread existed but was not running
//	' ' the thread had not been spawned or had exited
//
// It is an approximation: a bucket spanning several switches shows every
// thread that ran in it. Intended for debugging scheduler behaviour
// (attach a Log via ult.Options.EventLog, then print Timeline).
func Timeline(events []Event, width int) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width <= 0 {
		width = 72
	}
	start, end := events[0].At, events[0].At
	for _, e := range events {
		if e.At < start {
			start = e.At
		}
		if e.At > end {
			end = e.At
		}
	}
	if end == start {
		end = start + 1
	}
	span := float64(end - start)
	bucket := func(at sim.Time) int {
		b := int(float64(at-start) / span * float64(width))
		// Clamp both ends: an event stamped exactly at end maps to width
		// (the half-open bucket grid has no column for it), and the low
		// clamp makes the in-range invariant local rather than resting on
		// the caller having scanned start as the true minimum — either
		// miss would index running[] out of range.
		if b >= width {
			b = width - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}

	type life struct {
		born, died sim.Time
		haveBorn   bool
		haveDied   bool
		running    []bool
	}
	threads := map[int32]*life{}
	get := func(id int32) *life {
		l := threads[id]
		if l == nil {
			l = &life{running: make([]bool, width)}
			threads[id] = l
		}
		return l
	}

	// Reconstruct running segments: a thread runs from its switch-in until
	// the next scheduling event (any thread's switch-in, its own block or
	// exit, or an idle entry).
	cur := int32(-1)
	var curFrom sim.Time
	closeSegment := func(until sim.Time) {
		if cur < 0 {
			return
		}
		l := get(cur)
		for b := bucket(curFrom); b <= bucket(until); b++ {
			l.running[b] = true
		}
		cur = -1
	}
	for _, e := range events {
		switch e.Kind {
		case EvSpawn:
			l := get(e.Thread)
			l.born, l.haveBorn = e.At, true
		case EvSwitchIn:
			closeSegment(e.At)
			cur = e.Thread
			curFrom = e.At
		case EvBlock, EvExit:
			if e.Thread == cur {
				closeSegment(e.At)
			}
			if e.Kind == EvExit {
				l := get(e.Thread)
				l.died, l.haveDied = e.At, true
			}
		case EvIdle:
			closeSegment(e.At)
		}
	}
	closeSegment(end)

	ids := make([]int32, 0, len(threads))
	for id := range threads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (%d buckets of %v)\n",
		start, end, width, sim.Duration(span/float64(width)))
	for _, id := range ids {
		l := threads[id]
		fmt.Fprintf(&b, "t%-4d |", id)
		for col := 0; col < width; col++ {
			at := start.Add(sim.Duration(span * float64(col) / float64(width)))
			switch {
			case l.running[col]:
				b.WriteByte('#')
			case l.haveBorn && at < l.born:
				b.WriteByte(' ')
			case l.haveDied && at > l.died:
				b.WriteByte(' ')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}
