// Package trace provides the instrumentation used to reproduce the paper's
// reported metrics: complete context switches, msgtest call counts, and the
// time-averaged number of threads waiting on outstanding receive requests
// (Figures 11-13). Counters are cheap enough to leave enabled; the
// experiment harness reads them after each run.
package trace

import (
	"sync"
	"sync/atomic"

	"chant/internal/sim"
)

// Counters accumulates event counts for one process. All counter fields are
// safe for concurrent update (real-mode transports may deliver from another
// process's goroutine); the waiting-thread integrator is guarded by its own
// mutex.
type Counters struct {
	// Scheduler events.
	FullSwitches    atomic.Uint64 // complete context switches (restore of a different thread)
	PartialSwitches atomic.Uint64 // TCB inspections without a restore (Scheduler polls (PS))
	Yields          atomic.Uint64 // yield calls, total
	YieldsNoSwitch  atomic.Uint64 // yields that returned immediately (no other ready thread)
	IdleEntries     atomic.Uint64 // times the scheduler found nothing runnable
	ThreadsCreated  atomic.Uint64

	// Communication events.
	Sends          atomic.Uint64
	Recvs          atomic.Uint64 // completed receives
	RecvImmediate  atomic.Uint64 // receives that matched an already-arrived message at post time
	EarlyArrivals  atomic.Uint64 // messages buffered in the unexpected queue (extra copy)
	BytesSent      atomic.Uint64
	MsgTestCalls   atomic.Uint64 // msgtest attempts (paper Tables 3-5, "msgtest" column)
	MsgTestFails   atomic.Uint64 // msgtest attempts that found the operation incomplete (Figure 12)
	TestAnyCalls   atomic.Uint64
	TestAnyScanned atomic.Uint64 // outstanding requests examined across all testany calls

	// Remote service requests.
	RSRRequests atomic.Uint64 // requests served by this process's server thread
	RSRSent     atomic.Uint64 // requests issued from this process

	// Conservative simulation (the pdes null-message protocol).
	NullsSent atomic.Uint64 // CMB null messages emitted by LPs on this process

	// Robustness events (fault injection, failure detection, recovery).
	FaultDrops        atomic.Uint64 // outbound messages dropped by the fault plane
	FaultDups         atomic.Uint64 // outbound messages duplicated by the fault plane
	FaultDelays       atomic.Uint64 // outbound messages delayed/stalled by the fault plane
	UnexpectedDropped atomic.Uint64 // messages dropped at the unexpected-queue cap
	RecvTimeouts      atomic.Uint64 // receives abandoned by a deadline wait
	PeerDeadRecvs     atomic.Uint64 // receives failed because their peer was declared dead
	PeersDead         atomic.Uint64 // peers this process declared dead
	RSRRetries        atomic.Uint64 // RSR call attempts beyond the first
	RSRTimeouts       atomic.Uint64 // RSR calls that exhausted their retry budget
	RSRDupsServed     atomic.Uint64 // duplicate RSR requests answered from the dedup cache

	// Recovery events (coordinated checkpoints and PE restart).
	Checkpoints      atomic.Uint64 // coordinated snapshots this process finalized
	InFlightLogged   atomic.Uint64 // in-flight messages recorded between marker arrivals
	Restarts         atomic.Uint64 // times this process was restored from a checkpoint
	InFlightReplayed atomic.Uint64 // logged messages re-delivered after a restore
	RejoinsServed    atomic.Uint64 // rejoin announcements served from restarted peers
	PeersRecovered   atomic.Uint64 // peers this process moved from dead back to alive

	wait waitingIntegrator
}

// waitingIntegrator computes the time average of the number of threads
// waiting on outstanding receive requests, as plotted in Figure 13.
type waitingIntegrator struct {
	mu       sync.Mutex
	current  int
	max      int
	lastAt   sim.Time
	integral float64 // thread-nanoseconds
	started  bool
	startAt  sim.Time
}

// WaitBegin records that one more thread started waiting on an outstanding
// receive at virtual time now.
func (c *Counters) WaitBegin(now sim.Time) { c.wait.update(now, +1) }

// WaitEnd records that a waiting thread's receive completed at time now.
func (c *Counters) WaitEnd(now sim.Time) { c.wait.update(now, -1) }

// WaitEndAt records that a receive stopped being outstanding at time at,
// which may lie in the past (the thread observes the arrival only when it
// is next polled or scheduled). The integral is corrected retroactively so
// the metric measures "threads waiting on outstanding receive requests"
// (paper Figure 13) — a request that has already been satisfied no longer
// counts, even if its thread has not yet resumed.
func (c *Counters) WaitEndAt(at sim.Time) {
	w := &c.wait
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		panic("trace: WaitEndAt without WaitBegin")
	}
	if at >= w.lastAt {
		w.integral += float64(w.current) * float64(at.Sub(w.lastAt))
		w.lastAt = at
	} else {
		// Retroactive completion: remove this thread's contribution over
		// [at, lastAt]. Clamp at to the start of the observation window:
		// a completion stamped before the first wait event (a receive
		// satisfied before any thread was integrated as waiting, or a
		// failure detector marking a peer dead at an earlier timestamp)
		// must not subtract time that was never added, which would drive
		// the Figure-13 integral negative.
		if at < w.startAt {
			at = w.startAt
		}
		w.integral -= float64(w.lastAt.Sub(at))
	}
	w.current--
	if w.current < 0 {
		panic("trace: waiting-thread count went negative")
	}
}

func (w *waitingIntegrator) update(now sim.Time, delta int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		w.started = true
		w.startAt = now
		w.lastAt = now
	}
	w.integral += float64(w.current) * float64(now.Sub(w.lastAt))
	w.lastAt = now
	w.current += delta
	if w.current < 0 {
		panic("trace: waiting-thread count went negative")
	}
	if w.current > w.max {
		w.max = w.current
	}
}

// AvgWaiting reports the time-averaged number of waiting threads over
// [first wait event, end]. It returns 0 if no thread ever waited.
func (c *Counters) AvgWaiting(end sim.Time) float64 {
	w := &c.wait
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started || end <= w.startAt {
		return 0
	}
	integral := w.integral + float64(w.current)*float64(end.Sub(w.lastAt))
	avg := integral / float64(end.Sub(w.startAt))
	if avg < 0 {
		// Retroactive corrections approximate per-thread wait windows with
		// the process-wide one; floating-point cancellation across many
		// corrections could otherwise leak an impossible negative average.
		return 0
	}
	return avg
}

// MaxWaiting reports the peak number of simultaneously waiting threads.
func (c *Counters) MaxWaiting() int {
	c.wait.mu.Lock()
	defer c.wait.mu.Unlock()
	return c.wait.max
}

// CurWaiting reports the instantaneous number of waiting threads.
func (c *Counters) CurWaiting() int {
	c.wait.mu.Lock()
	defer c.wait.mu.Unlock()
	return c.wait.current
}

// Snapshot is a plain-value copy of all counters, convenient for reports
// and for summation across processes.
type Snapshot struct {
	FullSwitches, PartialSwitches, Yields, YieldsNoSwitch, IdleEntries uint64
	ThreadsCreated                                                     uint64
	Sends, Recvs, RecvImmediate, EarlyArrivals, BytesSent              uint64
	MsgTestCalls, MsgTestFails, TestAnyCalls, TestAnyScanned           uint64
	RSRRequests, RSRSent                                               uint64
	NullsSent                                                          uint64
	FaultDrops, FaultDups, FaultDelays, UnexpectedDropped              uint64
	RecvTimeouts, PeerDeadRecvs, PeersDead                             uint64
	RSRRetries, RSRTimeouts, RSRDupsServed                             uint64
	Checkpoints, InFlightLogged, Restarts                              uint64
	InFlightReplayed, RejoinsServed, PeersRecovered                    uint64
	AvgWaiting                                                         float64
	MaxWaiting                                                         int
}

// Snap captures the current counter values, computing the waiting-thread
// average over the window ending at end.
func (c *Counters) Snap(end sim.Time) Snapshot {
	return Snapshot{
		FullSwitches:      c.FullSwitches.Load(),
		PartialSwitches:   c.PartialSwitches.Load(),
		Yields:            c.Yields.Load(),
		YieldsNoSwitch:    c.YieldsNoSwitch.Load(),
		IdleEntries:       c.IdleEntries.Load(),
		ThreadsCreated:    c.ThreadsCreated.Load(),
		Sends:             c.Sends.Load(),
		Recvs:             c.Recvs.Load(),
		RecvImmediate:     c.RecvImmediate.Load(),
		EarlyArrivals:     c.EarlyArrivals.Load(),
		BytesSent:         c.BytesSent.Load(),
		MsgTestCalls:      c.MsgTestCalls.Load(),
		MsgTestFails:      c.MsgTestFails.Load(),
		TestAnyCalls:      c.TestAnyCalls.Load(),
		TestAnyScanned:    c.TestAnyScanned.Load(),
		RSRRequests:       c.RSRRequests.Load(),
		RSRSent:           c.RSRSent.Load(),
		NullsSent:         c.NullsSent.Load(),
		FaultDrops:        c.FaultDrops.Load(),
		FaultDups:         c.FaultDups.Load(),
		FaultDelays:       c.FaultDelays.Load(),
		UnexpectedDropped: c.UnexpectedDropped.Load(),
		RecvTimeouts:      c.RecvTimeouts.Load(),
		PeerDeadRecvs:     c.PeerDeadRecvs.Load(),
		PeersDead:         c.PeersDead.Load(),
		RSRRetries:        c.RSRRetries.Load(),
		RSRTimeouts:       c.RSRTimeouts.Load(),
		RSRDupsServed:     c.RSRDupsServed.Load(),
		Checkpoints:       c.Checkpoints.Load(),
		InFlightLogged:    c.InFlightLogged.Load(),
		Restarts:          c.Restarts.Load(),
		InFlightReplayed:  c.InFlightReplayed.Load(),
		RejoinsServed:     c.RejoinsServed.Load(),
		PeersRecovered:    c.PeersRecovered.Load(),
		AvgWaiting:        c.AvgWaiting(end),
		MaxWaiting:        c.MaxWaiting(),
	}
}

// Preload adds the event counts of a checkpoint snapshot into c, so a
// process restored from that checkpoint continues its counter history instead
// of restarting from zero. The caller passes a freshly zeroed Counters;
// add-only keeps the counter discipline (no Store ever discards a racing
// Add). Only the plain accumulators are restorable; the waiting-thread
// integrator is time-coupled and starts fresh in the new life.
func (c *Counters) Preload(s Snapshot) {
	c.FullSwitches.Add(s.FullSwitches)
	c.PartialSwitches.Add(s.PartialSwitches)
	c.Yields.Add(s.Yields)
	c.YieldsNoSwitch.Add(s.YieldsNoSwitch)
	c.IdleEntries.Add(s.IdleEntries)
	c.ThreadsCreated.Add(s.ThreadsCreated)
	c.Sends.Add(s.Sends)
	c.Recvs.Add(s.Recvs)
	c.RecvImmediate.Add(s.RecvImmediate)
	c.EarlyArrivals.Add(s.EarlyArrivals)
	c.BytesSent.Add(s.BytesSent)
	c.MsgTestCalls.Add(s.MsgTestCalls)
	c.MsgTestFails.Add(s.MsgTestFails)
	c.TestAnyCalls.Add(s.TestAnyCalls)
	c.TestAnyScanned.Add(s.TestAnyScanned)
	c.RSRRequests.Add(s.RSRRequests)
	c.RSRSent.Add(s.RSRSent)
	c.NullsSent.Add(s.NullsSent)
	c.FaultDrops.Add(s.FaultDrops)
	c.FaultDups.Add(s.FaultDups)
	c.FaultDelays.Add(s.FaultDelays)
	c.UnexpectedDropped.Add(s.UnexpectedDropped)
	c.RecvTimeouts.Add(s.RecvTimeouts)
	c.PeerDeadRecvs.Add(s.PeerDeadRecvs)
	c.PeersDead.Add(s.PeersDead)
	c.RSRRetries.Add(s.RSRRetries)
	c.RSRTimeouts.Add(s.RSRTimeouts)
	c.RSRDupsServed.Add(s.RSRDupsServed)
	c.Checkpoints.Add(s.Checkpoints)
	c.InFlightLogged.Add(s.InFlightLogged)
	c.Restarts.Add(s.Restarts)
	c.InFlightReplayed.Add(s.InFlightReplayed)
	c.RejoinsServed.Add(s.RejoinsServed)
	c.PeersRecovered.Add(s.PeersRecovered)
}

// Add accumulates other into s field-by-field. Waiting-thread statistics
// are summed (the paper reports the total average across both processors'
// thread populations).
func (s *Snapshot) Add(other Snapshot) {
	s.FullSwitches += other.FullSwitches
	s.PartialSwitches += other.PartialSwitches
	s.Yields += other.Yields
	s.YieldsNoSwitch += other.YieldsNoSwitch
	s.IdleEntries += other.IdleEntries
	s.ThreadsCreated += other.ThreadsCreated
	s.Sends += other.Sends
	s.Recvs += other.Recvs
	s.RecvImmediate += other.RecvImmediate
	s.EarlyArrivals += other.EarlyArrivals
	s.BytesSent += other.BytesSent
	s.MsgTestCalls += other.MsgTestCalls
	s.MsgTestFails += other.MsgTestFails
	s.TestAnyCalls += other.TestAnyCalls
	s.TestAnyScanned += other.TestAnyScanned
	s.RSRRequests += other.RSRRequests
	s.RSRSent += other.RSRSent
	s.NullsSent += other.NullsSent
	s.FaultDrops += other.FaultDrops
	s.FaultDups += other.FaultDups
	s.FaultDelays += other.FaultDelays
	s.UnexpectedDropped += other.UnexpectedDropped
	s.RecvTimeouts += other.RecvTimeouts
	s.PeerDeadRecvs += other.PeerDeadRecvs
	s.PeersDead += other.PeersDead
	s.RSRRetries += other.RSRRetries
	s.RSRTimeouts += other.RSRTimeouts
	s.RSRDupsServed += other.RSRDupsServed
	s.Checkpoints += other.Checkpoints
	s.InFlightLogged += other.InFlightLogged
	s.Restarts += other.Restarts
	s.InFlightReplayed += other.InFlightReplayed
	s.RejoinsServed += other.RejoinsServed
	s.PeersRecovered += other.PeersRecovered
	s.AvgWaiting += other.AvgWaiting
	if other.MaxWaiting > s.MaxWaiting {
		s.MaxWaiting = other.MaxWaiting
	}
}
