// Perfetto/Chrome trace_event export. The output is the JSON object form
// ({"traceEvents":[...]}) with "X" complete events — one per span — and
// "M" metadata naming each PE's process and the endpoint pseudo-thread,
// loadable directly in ui.perfetto.dev or chrome://tracing.
//
// The writer is hand-rolled rather than encoding/json so the bytes are a
// pure function of the span slice: fixed key order, exact decimal
// microsecond timestamps (ns/1000 with three fractional digits — no float
// formatting), spans pre-sorted canonically. Determinism tests diff the
// output of two same-seed runs byte for byte.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// ExportTraceJSON writes spans as Chrome trace_event JSON. The slice is
// sorted in place into canonical order first, so equal span sets produce
// equal bytes regardless of collection order.
func ExportTraceJSON(w io.Writer, spans []Span) error {
	SortSpans(spans)
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")

	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata: name each PE's "process" and the endpoint pseudo-thread.
	pes := make(map[int32]bool)
	for _, s := range spans {
		pes[s.PE] = true
	}
	order := make([]int32, 0, len(pes))
	for pe := range pes {
		order = append(order, pe)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, pe := range order {
		emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"pe%d"}}`, pe, pe)
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"(endpoint)"}}`,
			pe, EndpointTID)
	}

	for _, s := range spans {
		emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":"%s","cat":"%s","args":{"v":%d}}`,
			s.PE, s.TID, micros(s.Begin), micros(s.End.Sub(s.Begin)), s.Kind, s.Kind.Category(), s.Arg)
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// micros renders a nanosecond count as exact decimal microseconds
// (trace_event ts/dur are in microseconds).
func micros[T ~int64](ns T) string {
	n := int64(ns)
	neg := ""
	if n < 0 {
		neg, n = "-", -n
	}
	return fmt.Sprintf("%s%d.%03d", neg, n/1000, n%1000)
}
