package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleSpans() []Span {
	return []Span{
		{Kind: SpanRun, PE: 1, TID: 2, Begin: us(10), End: us(15), Arg: 0},
		{Kind: SpanSend, PE: 0, TID: 1, Begin: us(2), End: us(3), Arg: 64},
		{Kind: SpanIngressDrain, PE: 0, TID: EndpointTID, Begin: us(4), End: us(5), Arg: 3},
		{Kind: SpanBlocked, PE: 1, TID: 2, Begin: us(0), End: us(10), Arg: 0},
	}
}

func TestExportTraceJSONIsValidTraceEvent(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportTraceJSON(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var x, m int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			x++
		case "M":
			m++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if x != 4 {
		t.Fatalf("got %d X events, want 4", x)
	}
	if m != 4 { // process_name + endpoint thread_name for PEs 0 and 1
		t.Fatalf("got %d M events, want 4", m)
	}
	// Spot-check exact microsecond conversion: the send span begins at
	// 2us and lasts 1us.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "send" {
			found = true
			if e.Ts != 2 || e.Dur != 1 || e.Cat != "comm" || e.Args["v"].(float64) != 64 {
				t.Fatalf("send event wrong: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("send span missing from export")
	}
}

func TestExportTraceJSONByteDeterministic(t *testing.T) {
	// The same span set in any order exports to identical bytes.
	a := sampleSpans()
	b := []Span{a[3], a[1], a[0], a[2]}
	var bufA, bufB bytes.Buffer
	if err := ExportTraceJSON(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := ExportTraceJSON(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("export depends on span order:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
}

func TestMicrosExactDecimals(t *testing.T) {
	cases := map[int64]string{
		0:       "0.000",
		1:       "0.001",
		999:     "0.999",
		1000:    "1.000",
		1234567: "1234.567",
		-1500:   "-1.500",
	}
	for ns, want := range cases {
		if got := micros(ns); got != want {
			t.Errorf("micros(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestSpanKindNamesComplete(t *testing.T) {
	for k := SpanKind(0); k < numSpanKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("SpanKind %d has no name", k)
		}
		if k.Category() == "" {
			t.Errorf("SpanKind %d has no category", k)
		}
	}
	if strings.Contains(SpanKind(200).String(), "run") {
		t.Error("out-of-range kind must not alias a real name")
	}
}
