// The span model: where Counters answer "how many", spans answer "when and
// for how long". A Span is a closed [Begin, End] interval scoped to a thread
// (scheduler occupancy, blocked intervals), an endpoint (sends, ingress
// drains, direct deliveries, match-to-observe latency), or an RSR call
// (client issue-to-reply, server dispatch), plus the recovery brackets
// (checkpoint capture, restore). Timestamps are machine.Host.Now values, so
// spans carry virtual time under the simulation kernel and wall time since
// host start in real mode — the exporter does not care which.
//
// Emission discipline: a span is recorded once, at its End, carrying the
// Begin the instrumentation site remembered. There is no begin/end pairing
// at export time and an abandoned begin costs nothing.
package trace

import (
	"sort"
	"sync"

	"chant/internal/sim"
)

// SpanKind identifies what interval a span measures.
type SpanKind uint8

const (
	// SpanRun is a thread occupying the processor: full switch-in to the
	// moment control returns to the scheduler.
	SpanRun SpanKind = iota
	// SpanBlocked is a thread parked off the ready queue: Block to Unblock.
	SpanBlocked
	// SpanSend brackets one send through the endpoint, transport included.
	SpanSend
	// SpanMatch measures delivery-to-observation latency: a receive
	// completing in the mailbox until the waiting thread sees it.
	SpanMatch
	// SpanIngressDrain brackets one batched drain of the MPSC ingress ring.
	SpanIngressDrain
	// SpanDirectDeliver marks a zero-copy delivery straight into a posted
	// receive's buffer (instantaneous: Begin == End).
	SpanDirectDeliver
	// SpanRSRCall is the client side of a remote service request: issue to
	// decoded reply.
	SpanRSRCall
	// SpanRSRServe is the server side: request picked up to handler done.
	SpanRSRServe
	// SpanCheckpoint brackets one local checkpoint capture.
	SpanCheckpoint
	// SpanRestore brackets restoring a process from a checkpoint.
	SpanRestore

	numSpanKinds
)

// String names the kind as it appears in exported traces.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

var spanKindNames = [...]string{
	SpanRun:           "run",
	SpanBlocked:       "blocked",
	SpanSend:          "send",
	SpanMatch:         "match",
	SpanIngressDrain:  "ingress-drain",
	SpanDirectDeliver: "direct-deliver",
	SpanRSRCall:       "rsr-call",
	SpanRSRServe:      "rsr-serve",
	SpanCheckpoint:    "checkpoint",
	SpanRestore:       "restore",
}

// Category groups kinds into Perfetto categories.
func (k SpanKind) Category() string {
	switch k {
	case SpanRun, SpanBlocked:
		return "sched"
	case SpanSend, SpanMatch, SpanIngressDrain, SpanDirectDeliver:
		return "comm"
	case SpanRSRCall, SpanRSRServe:
		return "rsr"
	default:
		return "recovery"
	}
}

// EndpointTID is the pseudo-thread spans not attributable to a specific
// thread are filed under (endpoint- and transport-side work).
const EndpointTID int32 = -1

// Span is one recorded interval. Arg carries a kind-specific figure: bytes
// for send/deliver kinds, messages drained for SpanIngressDrain, the handler
// id for RSR kinds, the checkpoint id for recovery kinds.
type Span struct {
	Kind    SpanKind
	PE, TID int32
	Begin   sim.Time
	End     sim.Time
	Arg     uint64
}

// Tracer collects spans. A nil *Tracer is the disabled state: every
// instrumentation site guards with a single nil compare before gathering
// timestamps, so tracing costs nothing when off — in particular the
// real-mode hot path stays allocation- and lock-free.
//
// Two backing stores share the front door. Deterministic (sim) runs append
// under a mutex in emission order, exactly as cheap as the existing event
// Log and safe for the parallel kernel's worker goroutines. Real-mode runs
// use the lock-free per-PE flight recorder instead (see recorder.go), since
// a mutex per span on the data-plane hot path would serialize the PEs being
// measured.
type Tracer struct {
	rec *Recorder

	mu      sync.Mutex
	spans   []Span
	limit   int
	dropped uint64
}

// defaultSpanLimit bounds the deterministic store: enough for every
// chantbench workload while keeping a runaway trace from eating the heap.
const defaultSpanLimit = 1 << 20

// NewTracer returns a tracer with the deterministic ordered store, holding
// at most limit spans (0 selects a generous default). Use for simulation
// runs of either kernel.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = defaultSpanLimit
	}
	return &Tracer{limit: limit}
}

// NewFlightTracer returns a tracer backed by a lock-free flight recorder
// with one ring per PE of slotsPerRing slots each (0 selects defaults).
// Use for real-mode runs; old spans are overwritten once a ring wraps.
func NewFlightTracer(pes, slotsPerRing int) *Tracer {
	return &Tracer{rec: NewRecorder(pes, slotsPerRing)}
}

// Span records one interval. The receiver must be non-nil; callers gate on
// that themselves so disabled tracing skips timestamp collection too.
func (t *Tracer) Span(kind SpanKind, pe, tid int32, begin, end sim.Time, arg uint64) {
	if t.rec != nil {
		t.rec.Record(int(pe), Span{Kind: kind, PE: pe, TID: tid, Begin: begin, End: end, Arg: arg})
		return
	}
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Kind: kind, PE: pe, TID: tid, Begin: begin, End: end, Arg: arg})
	}
	t.mu.Unlock()
}

// Snapshot returns the collected spans in canonical order (Begin, End,
// Kind, PE, TID, Arg): a total order independent of which store backed the
// tracer and of worker interleaving, so two runs that emitted the same
// spans snapshot to the same slice.
func (t *Tracer) Snapshot() []Span {
	var out []Span
	if t.rec != nil {
		out = t.rec.Snapshot()
	} else {
		t.mu.Lock()
		out = append(out, t.spans...)
		t.mu.Unlock()
	}
	SortSpans(out)
	return out
}

// Dropped reports how many spans were lost: limit overflow on the
// deterministic store, ring overwrites on the flight recorder.
func (t *Tracer) Dropped() uint64 {
	if t.rec != nil {
		return t.rec.Dropped()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SortSpans orders spans canonically (Begin, End, Kind, PE, TID, Arg).
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.PE != b.PE {
			return a.PE < b.PE
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Arg < b.Arg
	})
}
