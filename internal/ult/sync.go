package ult

// Mutex is a mutual-exclusion lock among threads of one scheduler
// (the "Lock (e.g., mutex)" capability of the paper's Figure 2). Waiters
// queue FIFO and ownership is handed directly to the oldest waiter on
// unlock, so the lock is fair and starvation-free under cooperative
// scheduling.
type Mutex struct {
	s       *Sched
	owner   *TCB
	waiters []*TCB
}

// NewMutex creates a mutex for threads of s.
func NewMutex(s *Sched) *Mutex { return &Mutex{s: s} }

// Lock acquires the mutex, blocking the calling thread until available.
// Locking a mutex the caller already holds panics (it would self-deadlock).
func (m *Mutex) Lock() {
	t := m.s.mustCurrent("Mutex.Lock")
	if m.owner == t {
		panic("ult: recursive Mutex.Lock would deadlock")
	}
	if m.owner == nil {
		m.owner = t
		return
	}
	m.waiters = append(m.waiters, t)
	for m.owner != t {
		t.SetOnCancel(func() {
			removeTCB(&m.waiters, t)
			// If ownership was already handed to us, pass it on.
			if m.owner == t {
				m.handoff()
			}
		})
		m.s.Block()
		t.SetOnCancel(nil)
	}
}

// TryLock acquires the mutex if it is free, reporting success, and never
// blocks.
func (m *Mutex) TryLock() bool {
	t := m.s.mustCurrent("Mutex.TryLock")
	if m.owner == nil {
		m.owner = t
		return true
	}
	return false
}

// Unlock releases the mutex, handing it to the oldest waiter if any.
// Unlocking a mutex the caller does not hold panics.
func (m *Mutex) Unlock() {
	t := m.s.mustCurrent("Mutex.Unlock")
	if m.owner != t {
		panic("ult: Mutex.Unlock by non-owner")
	}
	m.handoff()
}

// handoff transfers ownership to the oldest waiter, or frees the mutex.
func (m *Mutex) handoff() {
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	m.s.Unblock(next)
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Cond is a condition variable (the "Wait (e.g., condition variable)"
// capability of Figure 2) tied to a Mutex.
type Cond struct {
	m       *Mutex
	waiters []*TCB
}

// NewCond creates a condition variable using m for its monitor.
func NewCond(m *Mutex) *Cond { return &Cond{m: m} }

// Wait atomically releases the mutex and blocks until Signal or Broadcast
// wakes the thread, then reacquires the mutex before returning. As with
// POSIX condition variables, callers must re-check their predicate in a
// loop.
func (c *Cond) Wait() {
	t := c.m.s.mustCurrent("Cond.Wait")
	if c.m.owner != t {
		panic("ult: Cond.Wait without holding the mutex")
	}
	c.waiters = append(c.waiters, t)
	c.m.Unlock()
	t.SetOnCancel(func() { removeTCB(&c.waiters, t) })
	c.m.s.Block()
	t.SetOnCancel(nil)
	c.m.Lock()
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	t := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.m.s.Unblock(t)
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	for _, t := range c.waiters {
		c.m.s.Unblock(t)
	}
	c.waiters = nil
}
