package ult

import (
	"errors"
	"testing"
)

func TestKillCancelsEveryThread(t *testing.T) {
	s := newTestSched()
	var canceled []int
	err := s.Run(func() {
		for i := 0; i < 4; i++ {
			i := i
			s.Spawn("w", func() {
				defer func() {
					if r := recover(); r != nil {
						canceled = append(canceled, i)
						panic(r) // re-raise so the trampoline unwinds
					}
				}()
				for {
					s.Yield()
				}
			})
		}
		s.Yield() // let the workers start spinning
		s.Kill()
		s.Yield() // the kill takes effect at the next scheduling point
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("Run returned %v, want ErrKilled", err)
	}
	if len(canceled) != 4 {
		t.Fatalf("%d of 4 spinning threads were canceled: %v", len(canceled), canceled)
	}
	if !s.Killed() {
		t.Error("Killed() false after Kill")
	}
}

func TestKillUnwindsBlockedJoiner(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		spinner := s.Spawn("spin", func() {
			for {
				s.Yield()
			}
		})
		s.Spawn("killer", func() {
			s.Yield()
			s.Kill()
		})
		// Main blocks joining the spinner; the kill must cancel the spinner
		// and unwind this join rather than deadlocking.
		if _, jerr := s.Join(spinner); !errors.Is(jerr, ErrCanceled) {
			panic("join survived the kill: " + jerr.Error())
		}
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("Run returned %v, want ErrKilled", err)
	}
}

func TestKilledSchedulerStillReportsDoneThreads(t *testing.T) {
	s := newTestSched()
	ran := false
	err := s.Run(func() {
		w := s.Spawn("w", func() { ran = true })
		if _, jerr := s.Join(w); jerr != nil {
			panic(jerr)
		}
		s.Kill()
		s.Yield()
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("Run returned %v, want ErrKilled", err)
	}
	if !ran {
		t.Error("completed thread lost its work to the kill")
	}
}
