package ult

// Key identifies one slot of thread-local data, mirroring pthread keys.
// Keys are compared by pointer identity: create them with NewKey and share
// the pointer among the threads that use the slot.
type Key struct {
	name string
	// destructor runs when a thread that set this key finishes. Nil means
	// no cleanup.
	destructor func(value any)
}

// NewKey creates a thread-local data key. destructor, if non-nil, runs for
// each thread's value when that thread finishes.
func NewKey(name string, destructor func(value any)) *Key {
	return &Key{name: name, destructor: destructor}
}

// Name reports the key's debug name.
func (k *Key) Name() string { return k.name }

// SetLocal associates value with key for thread t
// (pthread_setspecific). A nil value deletes the association.
func (t *TCB) SetLocal(key *Key, value any) {
	if value == nil {
		delete(t.locals, key)
		return
	}
	if t.locals == nil {
		t.locals = make(map[*Key]any)
	}
	t.locals[key] = value
}

// Local reports the value associated with key for thread t, or nil
// (pthread_getspecific).
func (t *TCB) Local(key *Key) any {
	return t.locals[key]
}

// runDestructors invokes key destructors for a finished thread.
func (t *TCB) runDestructors() {
	for k, v := range t.locals {
		if k.destructor != nil {
			k.destructor(v)
		}
	}
	t.locals = nil
}
