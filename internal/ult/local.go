package ult

// Key identifies one slot of thread-local data, mirroring pthread keys.
// Keys are compared by pointer identity: create them with NewKey and share
// the pointer among the threads that use the slot.
type Key struct {
	name string
	// destructor runs when a thread that set this key finishes. Nil means
	// no cleanup.
	destructor func(value any)
}

// NewKey creates a thread-local data key. destructor, if non-nil, runs for
// each thread's value when that thread finishes.
func NewKey(name string, destructor func(value any)) *Key {
	return &Key{name: name, destructor: destructor}
}

// Name reports the key's debug name.
func (k *Key) Name() string { return k.name }

// SetLocal associates value with key for thread t
// (pthread_setspecific). A nil value deletes the association.
func (t *TCB) SetLocal(key *Key, value any) {
	if value == nil {
		if _, had := t.locals[key]; had {
			delete(t.locals, key)
			removeKey(&t.localOrder, key)
		}
		return
	}
	if t.locals == nil {
		t.locals = make(map[*Key]any)
	}
	if _, had := t.locals[key]; !had {
		t.localOrder = append(t.localOrder, key)
	}
	t.locals[key] = value
}

// removeKey deletes the first occurrence of key from *list, niling the
// vacated tail slot so the backing array does not pin the key alive.
func removeKey(list *[]*Key, key *Key) {
	s := *list
	for i, k := range s {
		if k == key {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			*list = s[:len(s)-1]
			return
		}
	}
}

// Local reports the value associated with key for thread t, or nil
// (pthread_getspecific).
func (t *TCB) Local(key *Key) any {
	return t.locals[key]
}

// runDestructors invokes key destructors for a finished thread, in key
// insertion order so cleanup is deterministic.
func (t *TCB) runDestructors() {
	for _, k := range t.localOrder {
		if k.destructor != nil {
			k.destructor(t.locals[k])
		}
	}
	t.locals = nil
	t.localOrder = nil
}
