package ult

import (
	"errors"
	"testing"

	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

// newTestSched returns a real-clock scheduler suitable for behavioural
// tests (cost charges are no-ops against a RealHost).
func newTestSched() *Sched {
	return NewSched(machine.NewRealHost(machine.Modern()), &trace.Counters{}, Options{Name: "test", IdleBlock: true})
}

func TestRunMainOnly(t *testing.T) {
	s := newTestSched()
	ran := false
	if err := s.Run(func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("main did not run")
	}
}

func TestSpawnedThreadsComplete(t *testing.T) {
	s := newTestSched()
	var order []int
	err := s.Run(func() {
		for i := 0; i < 5; i++ {
			i := i
			s.Spawn("w", func() { order = append(order, i) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("ran %d of 5 threads", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("spawn order not FIFO: %v", order)
		}
	}
}

func TestYieldRoundRobin(t *testing.T) {
	s := newTestSched()
	var log []string
	err := s.Run(func() {
		for _, name := range []string{"a", "b"} {
			name := name
			s.Spawn(name, func() {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					s.Yield()
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestYieldFastPathNoSwitch(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		before := s.Counters().FullSwitches.Load()
		for i := 0; i < 10; i++ {
			s.Yield()
		}
		if got := s.Counters().FullSwitches.Load(); got != before {
			t.Errorf("lone-thread yields performed %d context switches", got-before)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Counters().YieldsNoSwitch.Load(); got != 10 {
		t.Fatalf("YieldsNoSwitch = %d, want 10", got)
	}
}

func TestJoinExitValue(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		w := s.Spawn("worker", func() { s.Exit(42) })
		v, err := s.Join(w)
		if err != nil || v != 42 {
			t.Errorf("Join = (%v, %v), want (42, nil)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinNormalReturnIsNil(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		w := s.Spawn("worker", func() {})
		v, err := s.Join(w)
		if err != nil || v != nil {
			t.Errorf("Join = (%v, %v), want (nil, nil)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinAlreadyDone(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		w := s.Spawn("worker", func() { s.Exit("done") })
		s.Yield() // let worker finish first
		if w.State() != Done {
			t.Error("worker should be done after yield")
		}
		v, err := s.Join(w)
		if err != nil || v != "done" {
			t.Errorf("Join = (%v, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinErrors(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		cur := s.Current()
		if _, err := s.Join(cur); !errors.Is(err, ErrSelfJoin) {
			t.Errorf("self join err = %v", err)
		}
		w := s.Spawn("detached", func() {})
		w.Detach()
		if _, err := s.Join(w); !errors.Is(err, ErrDetached) {
			t.Errorf("detached join err = %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleJoiners(t *testing.T) {
	s := newTestSched()
	got := 0
	err := s.Run(func() {
		target := s.Spawn("target", func() {
			s.Yield()
			s.Exit(7)
		})
		j1 := s.Spawn("j1", func() {
			if v, err := s.Join(target); err == nil {
				got += v.(int)
			}
		})
		j2 := s.Spawn("j2", func() {
			if v, err := s.Join(target); err == nil {
				got += v.(int)
			}
		})
		s.Join(j1)
		s.Join(j2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 {
		t.Fatalf("joiners collected %d, want 14", got)
	}
}

func TestCancelReadyThread(t *testing.T) {
	s := newTestSched()
	ran := false
	err := s.Run(func() {
		w := s.Spawn("victim", func() {
			s.Yield()
			ran = true // must never execute past the first scheduling point
		})
		s.Yield() // victim runs up to its first Yield
		s.Cancel(w)
		if _, err := s.Join(w); !errors.Is(err, ErrCanceled) {
			t.Errorf("join of canceled thread: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("canceled thread kept running")
	}
}

func TestCancelBeforeFirstRun(t *testing.T) {
	s := newTestSched()
	ran := false
	err := s.Run(func() {
		w := s.Spawn("victim", func() { ran = true })
		s.Cancel(w)
		if _, err := s.Join(w); !errors.Is(err, ErrCanceled) {
			t.Errorf("join: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("thread ran despite being canceled before its first switch-in")
	}
}

func TestCancelSelfExitsImmediately(t *testing.T) {
	s := newTestSched()
	after := false
	err := s.Run(func() {
		w := s.Spawn("self-cancel", func() {
			s.Cancel(s.Current())
			after = true
		})
		if _, err := s.Join(w); !errors.Is(err, ErrCanceled) {
			t.Errorf("join: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if after {
		t.Fatal("self-cancel did not exit immediately")
	}
}

func TestCancelFinishedIsNoop(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		w := s.Spawn("w", func() { s.Exit(1) })
		s.Yield()
		s.Cancel(w) // already done
		if v, err := s.Join(w); err != nil || v != 1 {
			t.Errorf("join after no-op cancel: (%v, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDaemonReapedAtShutdown(t *testing.T) {
	s := newTestSched()
	var daemon *TCB
	iterations := 0
	err := s.Run(func() {
		daemon = s.SpawnWith("server", func() {
			for {
				iterations++
				s.Yield()
			}
		}, SpawnOpts{Daemon: true})
		s.Yield()
		s.Yield()
	})
	if err != nil {
		t.Fatal(err)
	}
	if daemon.State() != Done {
		t.Fatalf("daemon state = %v after Run, want done", daemon.State())
	}
	if iterations == 0 {
		t.Fatal("daemon never ran")
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		var a, b *TCB
		a = s.Spawn("a", func() { s.Yield(); s.Join(b) })
		b = s.Spawn("b", func() { s.Join(a) })
		s.Join(a)
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestThreadPanicPropagates(t *testing.T) {
	s := newTestSched()
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %v, want *PanicError", r)
		}
		if pe.Thread != "bad" || pe.Value != "boom" {
			t.Fatalf("PanicError = %+v", pe)
		}
	}()
	s.Run(func() {
		s.Spawn("bad", func() { panic("boom") })
	})
	t.Fatal("Run returned instead of propagating the panic")
}

func TestPriorityOrdering(t *testing.T) {
	s := newTestSched()
	var order []string
	err := s.Run(func() {
		s.SpawnWith("low", func() { order = append(order, "low") }, SpawnOpts{Priority: 0})
		s.SpawnWith("high", func() { order = append(order, "high") }, SpawnOpts{Priority: 5})
		s.SpawnWith("mid", func() { order = append(order, "mid") }, SpawnOpts{Priority: 3})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"high", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityBoostWhileQueued(t *testing.T) {
	s := newTestSched()
	var order []string
	err := s.Run(func() {
		a := s.Spawn("a", func() { order = append(order, "a") })
		s.Spawn("b", func() { order = append(order, "b") })
		a.SetPriority(10) // boost a while it waits in the ready queue
		s.Yield()
	})
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "a" {
		t.Fatalf("boosted thread did not run first: %v", order)
	}
}

func TestPendingPartialSwitch(t *testing.T) {
	s := newTestSched()
	tries := 0
	resumed := false
	err := s.Run(func() {
		w := s.Spawn("waiter", func() {
			me := s.Current()
			me.Pending = func() bool {
				tries++
				return tries >= 3
			}
			s.Yield()
			resumed = true
		})
		// Keep the scheduler busy so the waiter's TCB is inspected.
		for i := 0; i < 10 && !resumed; i++ {
			s.Yield()
		}
		s.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tries != 3 {
		t.Fatalf("pending checked %d times, want 3", tries)
	}
	if !resumed {
		t.Fatal("waiter never resumed after pending satisfied")
	}
	if got := s.Counters().PartialSwitches.Load(); got != 3 {
		t.Fatalf("PartialSwitches = %d, want 3", got)
	}
}

func TestPreScheduleHookRuns(t *testing.T) {
	s := newTestSched()
	calls := 0
	s.SetPreSchedule(func() { calls++ })
	err := s.Run(func() {
		s.Yield()
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("pre-schedule hook never ran")
	}
}

func TestBlockUnblock(t *testing.T) {
	s := newTestSched()
	var w *TCB
	stage := 0
	err := s.Run(func() {
		w = s.Spawn("sleeper", func() {
			stage = 1
			s.Block()
			stage = 2
		})
		s.Yield() // sleeper runs and blocks
		if stage != 1 || w.State() != Blocked {
			t.Errorf("stage=%d state=%v", stage, w.State())
		}
		s.Unblock(w)
		s.Join(w)
		if stage != 2 {
			t.Errorf("sleeper did not resume: stage=%d", stage)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnblockNonBlockedPanics(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		w := s.Spawn("w", func() {})
		defer func() {
			if recover() == nil {
				t.Error("Unblock of ready thread did not panic")
			}
		}()
		s.Unblock(w)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThreadOutsideContextPanics(t *testing.T) {
	s := newTestSched()
	defer func() {
		if recover() == nil {
			t.Error("Yield outside thread context did not panic")
		}
	}()
	s.Yield()
}

func TestExitValueSkipsRestOfBody(t *testing.T) {
	s := newTestSched()
	after := false
	err := s.Run(func() {
		w := s.Spawn("w", func() {
			s.Exit("early")
			after = true
		})
		v, err := s.Join(w)
		if err != nil || v != "early" {
			t.Errorf("Join = (%v, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if after {
		t.Fatal("code after Exit ran")
	}
}

func TestManyShortThreadsPrune(t *testing.T) {
	s := newTestSched()
	const n = 1000
	ran := 0
	err := s.Run(func() {
		for i := 0; i < n; i++ {
			w := s.Spawn("w", func() { ran++ })
			s.Join(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != n {
		t.Fatalf("ran %d of %d", ran, n)
	}
	if len(s.threads) > 300 {
		t.Fatalf("thread bookkeeping not pruned: %d entries", len(s.threads))
	}
}

// Scheduler behaviour must be deterministic under the simulation kernel:
// identical runs produce identical counter values and final clocks.
func TestSchedulerDeterministicUnderSim(t *testing.T) {
	runOnce := func() (trace.Snapshot, sim.Time) {
		k := sim.NewKernel()
		ctrs := &trace.Counters{}
		var end sim.Time
		k.Spawn("pe", func(p *sim.Proc) {
			host := machine.NewSimHost(p, machine.Paragon1994())
			s := NewSched(host, ctrs, Options{Name: "pe0"})
			err := s.Run(func() {
				for i := 0; i < 4; i++ {
					s.Spawn("w", func() {
						for j := 0; j < 10; j++ {
							host.Compute(100)
							s.Yield()
						}
					})
				}
			})
			if err != nil {
				t.Error(err)
			}
			end = host.Now()
		})
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return ctrs.Snap(end), end
	}
	s1, e1 := runOnce()
	s2, e2 := runOnce()
	if s1 != s2 || e1 != e2 {
		t.Fatalf("nondeterministic: %+v@%v vs %+v@%v", s1, e1, s2, e2)
	}
	if s1.FullSwitches == 0 {
		t.Fatal("no context switches counted")
	}
}

// Context-switch cost must appear in virtual time: more switches, more time.
func TestSwitchCostCharged(t *testing.T) {
	elapse := func(yields int) sim.Time {
		k := sim.NewKernel()
		var end sim.Time
		k.Spawn("pe", func(p *sim.Proc) {
			host := machine.NewSimHost(p, machine.Paragon1994())
			s := NewSched(host, &trace.Counters{}, Options{})
			s.Run(func() {
				s.Spawn("a", func() {
					for i := 0; i < yields; i++ {
						s.Yield()
					}
				})
				s.Spawn("b", func() {
					for i := 0; i < yields; i++ {
						s.Yield()
					}
				})
			})
			end = host.Now()
		})
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if !(elapse(50) > elapse(5)) {
		t.Fatal("more context switches did not consume more virtual time")
	}
}

func TestEventLogRecordsSchedulerActivity(t *testing.T) {
	log := trace.NewLog(256)
	s := NewSched(machine.NewRealHost(machine.Modern()), &trace.Counters{},
		Options{Name: "logged", IdleBlock: true, EventLog: log})
	err := s.Run(func() {
		w := s.Spawn("worker", func() {
			s.Yield()
			s.Block()
		})
		s.Yield()
		s.Yield()
		s.Unblock(w)
		s.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.EventKind]int{}
	for _, e := range log.Snapshot() {
		kinds[e.Kind]++
	}
	for _, want := range []trace.EventKind{trace.EvSpawn, trace.EvSwitchIn,
		trace.EvBlock, trace.EvUnblock, trace.EvExit} {
		if kinds[want] == 0 {
			t.Errorf("no %v events recorded; dump:\n%s", want, log.Dump())
		}
	}
}
