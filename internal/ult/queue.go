package ult

import "math/bits"

// This file holds the scheduler's indexed ready queue. The seed
// implementation picked the next thread with a linear max-priority scan over
// one slice — O(n) per scheduling decision, which dominates the context
// switch the paper's Table 2 is built around once thread counts grow. The
// ReadyQueue replaces it with per-priority FIFO ring deques plus an
// occupancy bitmap, making both enqueue and pick O(1) for the priorities
// programs actually use, while reproducing the linear scan's semantics
// exactly:
//
//   - pick = the thread with the highest *current* priority, oldest
//     enqueue first among equals (the scan read t.prio at pick time, so a
//     priority raised while queued took effect immediately);
//   - within one priority, strict FIFO in enqueue order.
//
// Equivalence is maintained by stamping every enqueue with a monotonic
// sequence number and, when a queued thread's priority changes, eagerly
// relocating it into its new priority's deque at its sequence-ordered
// position. Relocation is O(deque length) but happens only on the rare
// raise-while-queued path (the paper's server boost fires while the server
// is blocked, not queued); every hot-path operation touches O(1) entries.
// LinearQueue preserves the seed algorithm as a reference model for
// differential tests and the BenchmarkHotPath baselines.

// prioRing is one priority's FIFO deque: a growable circular buffer.
type prioRing struct {
	buf  []*TCB
	head int
	n    int
}

func (r *prioRing) grow() {
	next := make([]*TCB, max(4, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = next, 0
}

func (r *prioRing) pushBack(t *TCB) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = t
	r.n++
}

func (r *prioRing) popFront() *TCB {
	t := r.buf[r.head]
	r.buf[r.head] = nil // release the reference; the deque outlives the thread
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return t
}

// at reports the i-th element from the front.
func (r *prioRing) at(i int) *TCB { return r.buf[(r.head+i)%len(r.buf)] }

// removeAt deletes the i-th element from the front, shifting the tail.
func (r *prioRing) removeAt(i int) {
	for j := i; j < r.n-1; j++ {
		r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j+1)%len(r.buf)]
	}
	r.buf[(r.head+r.n-1)%len(r.buf)] = nil
	r.n--
}

// insertSorted places t at its sequence-ordered position (ascending
// readySeq), so a relocated thread keeps its enqueue-order rank among the
// threads that now share its priority.
func (r *prioRing) insertSorted(t *TCB) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.n
	for i > 0 && r.at(i-1).readySeq > t.readySeq {
		r.buf[(r.head+i)%len(r.buf)] = r.at(i - 1)
		i--
	}
	r.buf[(r.head+i)%len(r.buf)] = t
	r.n++
}

// bitmapPrios is the priority window covered by the occupancy bitmap:
// priorities in [0, 64) — which includes the default 0 and the server-boost
// priorities — resolve their highest occupied level with one bits.Len64.
const bitmapPrios = 64

// ReadyQueue is the scheduler's indexed run queue. The zero value is ready
// to use. It is exported (despite living in an internal package) so the
// hot-path benchmarks and chantbench can drive it directly against
// LinearQueue.
type ReadyQueue struct {
	buckets map[int]*prioRing
	occ     uint64 // bit p set <=> bucket for priority p (0<=p<64) is nonempty
	above   []int  // occupied priorities >= 64, sorted ascending (rare)
	below   []int  // occupied priorities < 0, sorted ascending (rare)
	size    int
	seq     uint64
}

// Len reports the number of queued threads.
func (q *ReadyQueue) Len() int { return q.size }

// Push appends t at the back of its current priority's deque.
func (q *ReadyQueue) Push(t *TCB) {
	q.seq++
	t.readySeq = q.seq
	t.readyPrio = t.prio
	t.inReady = true
	q.bucket(t.prio).pushBack(t)
	q.size++
}

// Pop removes and returns the oldest thread of the highest occupied
// priority, or nil if the queue is empty.
func (q *ReadyQueue) Pop() *TCB {
	p, ok := q.topPrio()
	if !ok {
		return nil
	}
	r := q.buckets[p]
	t := r.popFront()
	if r.n == 0 {
		q.deactivate(p)
	}
	t.inReady = false
	q.size--
	return t
}

// Do calls fn for every queued thread, highest priority first and FIFO
// within a priority (a deterministic order, for the chantdebug audit).
func (q *ReadyQueue) Do(fn func(*TCB)) {
	walk := func(p int) {
		r := q.buckets[p]
		for i := 0; i < r.n; i++ {
			fn(r.at(i))
		}
	}
	for i := len(q.above) - 1; i >= 0; i-- {
		walk(q.above[i])
	}
	for occ := q.occ; occ != 0; {
		p := bits.Len64(occ) - 1
		walk(p)
		occ &^= 1 << uint(p)
	}
	for i := len(q.below) - 1; i >= 0; i-- {
		walk(q.below[i])
	}
}

// move relocates a queued thread from priority from to priority to,
// preserving its sequence-ordered rank in the destination deque. Called by
// TCB.SetPriority when the thread is queued; the linear scan this queue
// replaces honored such changes at pick time, so the indexed queue must
// honor them eagerly.
func (q *ReadyQueue) move(t *TCB, from, to int) {
	r := q.buckets[from]
	for i := 0; i < r.n; i++ {
		if r.at(i) == t {
			r.removeAt(i)
			break
		}
	}
	if r.n == 0 {
		q.deactivate(from)
	}
	t.readyPrio = to
	q.bucket(to).insertSorted(t)
}

// bucket returns (activating if empty) the deque for priority p.
func (q *ReadyQueue) bucket(p int) *prioRing {
	if q.buckets == nil {
		q.buckets = make(map[int]*prioRing)
	}
	r := q.buckets[p]
	if r == nil {
		r = &prioRing{}
		q.buckets[p] = r
	}
	if r.n == 0 {
		q.activate(p)
	}
	return r
}

// topPrio reports the highest occupied priority.
func (q *ReadyQueue) topPrio() (int, bool) {
	if len(q.above) > 0 {
		return q.above[len(q.above)-1], true
	}
	if q.occ != 0 {
		return bits.Len64(q.occ) - 1, true
	}
	if len(q.below) > 0 {
		return q.below[len(q.below)-1], true
	}
	return 0, false
}

func (q *ReadyQueue) activate(p int) {
	switch {
	case 0 <= p && p < bitmapPrios:
		q.occ |= 1 << uint(p)
	case p >= bitmapPrios:
		q.above = insertPrio(q.above, p)
	default:
		q.below = insertPrio(q.below, p)
	}
}

func (q *ReadyQueue) deactivate(p int) {
	switch {
	case 0 <= p && p < bitmapPrios:
		q.occ &^= 1 << uint(p)
	case p >= bitmapPrios:
		q.above = removePrio(q.above, p)
	default:
		q.below = removePrio(q.below, p)
	}
}

// insertPrio adds p to a sorted (ascending) priority list if absent.
func insertPrio(list []int, p int) []int {
	i := 0
	for i < len(list) && list[i] < p {
		i++
	}
	if i < len(list) && list[i] == p {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = p
	return list
}

// removePrio deletes p from a sorted priority list.
func removePrio(list []int, p int) []int {
	for i, x := range list {
		if x == p {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// LinearQueue is the seed scheduler's ready queue, preserved verbatim as
// the reference model: differential tests assert ReadyQueue pops the same
// thread sequence, and BenchmarkHotPathReadyQueue* measures the indexed
// queue against this baseline.
type LinearQueue struct {
	s []*TCB
}

// Len reports the number of queued threads.
func (q *LinearQueue) Len() int { return len(q.s) }

// Push appends t to the queue.
func (q *LinearQueue) Push(t *TCB) { q.s = append(q.s, t) }

// Pop removes and returns the first queued thread of the highest current
// priority — the seed's O(n) pickReady scan.
func (q *LinearQueue) Pop() *TCB {
	if len(q.s) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(q.s); i++ {
		if q.s[i].prio > q.s[best].prio {
			best = i
		}
	}
	t := q.s[best]
	copy(q.s[best:], q.s[best+1:])
	q.s[len(q.s)-1] = nil
	q.s = q.s[:len(q.s)-1]
	return t
}

// NewBenchTCB creates a detached TCB usable only as a ready-queue element —
// for the hot-path benchmarks and differential tests, which exercise queue
// mechanics without running threads.
func NewBenchTCB(id int32, prio int) *TCB {
	return &TCB{id: id, prio: prio}
}
