//go:build chantdebug

package ult

import (
	"fmt"
	"strings"
	"testing"
)

// TestOwnerRejectsForeignGoroutine proves the chantdebug owner token: a raw
// goroutine calling into a running scheduler — the exact misuse the
// schedctx analyzer flags statically — panics at the call site instead of
// corrupting the ready queue.
func TestOwnerRejectsForeignGoroutine(t *testing.T) {
	s := newTestSched()
	got := make(chan any, 1)
	err := s.Run(func() {
		done := make(chan struct{})
		go func() {
			defer func() { got <- recover(); close(done) }()
			s.Spawn("intruder", func() {})
		}()
		<-done
	})
	if err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r == nil || !strings.Contains(fmt.Sprint(r), "outside the scheduling domain") {
		t.Fatalf("foreign Spawn did not trip the owner token; recovered %v", r)
	}
}

// TestOwnerRejectsForeignBlockingCall covers the blocking entry points,
// which go through mustCurrent's Assert.
func TestOwnerRejectsForeignBlockingCall(t *testing.T) {
	s := newTestSched()
	got := make(chan any, 1)
	err := s.Run(func() {
		done := make(chan struct{})
		go func() {
			defer func() { got <- recover(); close(done) }()
			s.Yield()
		}()
		<-done
	})
	if err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r == nil || !strings.Contains(fmt.Sprint(r), "outside the scheduling domain") {
		t.Fatalf("foreign Yield did not trip the owner token; recovered %v", r)
	}
}

// TestAuditCatchesCorruptAccounting corrupts the blocked count the way a
// bookkeeping bug would and proves the run-loop audit panics with a thread
// dump on the very next scheduling iteration.
func TestAuditCatchesCorruptAccounting(t *testing.T) {
	s := newTestSched()
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "blocked count") {
			t.Fatalf("corrupt accounting did not trip the audit; recovered %v", r)
		}
	}()
	s.Run(func() {
		s.Spawn("w", func() {})
		s.blocked++ // simulate a transition that skipped its bookkeeping
		s.Yield()   // forces a pass through the run loop's audit
	})
	t.Fatal("Run returned despite corrupt accounting")
}
