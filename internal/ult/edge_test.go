package ult

import (
	"errors"
	"testing"
)

// Edge-case and interaction tests beyond the basic suite.

func TestCancelCondWaiter(t *testing.T) {
	s := newTestSched()
	m := NewMutex(s)
	c := NewCond(m)
	err := s.Run(func() {
		victim := s.Spawn("victim", func() {
			m.Lock()
			c.Wait()
			t.Error("canceled cond waiter resumed body")
			m.Unlock()
		})
		s.Yield() // victim waits
		s.Cancel(victim)
		if _, err := s.Join(victim); !errors.Is(err, ErrCanceled) {
			t.Errorf("join: %v", err)
		}
		// The condition variable must be clean: signaling must not panic
		// or wake a ghost.
		m.Lock()
		c.Signal()
		m.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCanceledMutexOwnerLeavesLockHeld(t *testing.T) {
	// A canceled thread unwinds without releasing locks it holds (as with
	// pthreads without cleanup handlers); waiters then deadlock, and the
	// scheduler must report it rather than hang.
	s := newTestSched()
	m := NewMutex(s)
	err := s.Run(func() {
		owner := s.Spawn("owner", func() {
			m.Lock()
			s.Block() // parked while holding the lock
			m.Unlock()
		})
		s.Yield()
		s.Cancel(owner)
		s.Join(owner)
		if !m.Locked() {
			t.Error("cancel released the mutex; expected it to stay held")
		}
		waiter := s.Spawn("waiter", func() { m.Lock() })
		s.Join(waiter) // deadlock: detected below
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestPendingThreadSkipsYieldFastPath(t *testing.T) {
	// A lone thread with a pending request must NOT take the yield fast
	// path: the scheduler has to run its pending test (this is exactly
	// Table 2's Thread (SP) single-thread case).
	s := newTestSched()
	tries := 0
	err := s.Run(func() {
		me := s.Current()
		me.Pending = func() bool {
			tries++
			return tries >= 4
		}
		s.Yield()
		if tries != 4 {
			t.Errorf("pending tested %d times, want 4", tries)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Counters().PartialSwitches.Load(); got != 4 {
		t.Errorf("PartialSwitches = %d, want 4", got)
	}
}

func TestPendingClearedOnCancel(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		w := s.Spawn("w", func() {
			me := s.Current()
			me.Pending = func() bool { return false } // never satisfied
			s.Yield()
			t.Error("canceled pending thread resumed normally")
		})
		s.Yield() // w parks with its pending set
		s.Cancel(w)
		if _, err := s.Join(w); !errors.Is(err, ErrCanceled) {
			t.Errorf("join: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExitFromNestedCall(t *testing.T) {
	s := newTestSched()
	cleanup := 0
	err := s.Run(func() {
		w := s.Spawn("w", func() {
			defer func() { cleanup++ }()
			func() {
				defer func() { cleanup++ }()
				s.Exit("deep")
			}()
		})
		v, err := s.Join(w)
		if err != nil || v != "deep" {
			t.Errorf("join = (%v, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cleanup != 2 {
		t.Fatalf("defers ran %d times during Exit unwind, want 2", cleanup)
	}
}

func TestCancelRunsDefers(t *testing.T) {
	s := newTestSched()
	cleaned := false
	err := s.Run(func() {
		w := s.Spawn("w", func() {
			defer func() { cleaned = true }()
			s.Block()
		})
		s.Yield()
		s.Cancel(w)
		s.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("cancellation unwind skipped the thread's defers")
	}
}

func TestSpawnInsideThread(t *testing.T) {
	s := newTestSched()
	depth3 := false
	err := s.Run(func() {
		a := s.Spawn("a", func() {
			b := s.Spawn("b", func() {
				c := s.Spawn("c", func() { depth3 = true })
				s.Join(c)
			})
			s.Join(b)
		})
		s.Join(a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !depth3 {
		t.Fatal("nested spawns did not run")
	}
}

func TestEqualPriorityFIFOStable(t *testing.T) {
	s := newTestSched()
	var order []int
	err := s.Run(func() {
		for i := 0; i < 6; i++ {
			i := i
			s.SpawnWith("w", func() { order = append(order, i) }, SpawnOpts{Priority: 2})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-priority FIFO broken: %v", order)
		}
	}
}

func TestJoinerCanceledWhileWaiting(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		target := s.Spawn("target", func() {
			for i := 0; i < 5; i++ {
				s.Yield()
			}
		})
		joiner := s.Spawn("joiner", func() {
			s.Join(target)
			t.Error("canceled joiner returned from Join")
		})
		s.Yield() // joiner blocks on target
		s.Cancel(joiner)
		if _, err := s.Join(joiner); !errors.Is(err, ErrCanceled) {
			t.Errorf("join of joiner: %v", err)
		}
		// Target must still be joinable and unaffected.
		if _, err := s.Join(target); err != nil {
			t.Errorf("join of target: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockedThreadNotScheduled(t *testing.T) {
	s := newTestSched()
	ran := 0
	err := s.Run(func() {
		w := s.Spawn("sleeper", func() {
			s.Block()
			ran++
		})
		for i := 0; i < 10; i++ {
			s.Yield() // sleeper must never run while blocked
		}
		if ran != 0 {
			t.Error("blocked thread ran")
		}
		s.Unblock(w)
		s.Join(w)
		if ran != 1 {
			t.Error("unblocked thread did not run")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountersMatchActivity(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		a := s.Spawn("a", func() {
			for i := 0; i < 4; i++ {
				s.Yield()
			}
		})
		s.Join(a)
	})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.ThreadsCreated.Load() != 2 { // main + a
		t.Errorf("ThreadsCreated = %d, want 2", c.ThreadsCreated.Load())
	}
	if c.Yields.Load() < 4 {
		t.Errorf("Yields = %d, want >= 4", c.Yields.Load())
	}
	if c.FullSwitches.Load() == 0 {
		t.Error("no switches recorded")
	}
}
