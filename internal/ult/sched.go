package ult

import (
	"fmt"
	"strings"
	"sync/atomic"

	"chant/internal/check"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

// Options configures a scheduler.
type Options struct {
	// Name labels the scheduler in diagnostics (e.g. "pe0.p0").
	Name string
	// EventLog, when non-nil, records scheduler events (switches, blocks,
	// spawns, exits) for debugging; see trace.Log.
	EventLog *trace.Log
	// Tracer, when non-nil, receives scheduler spans (thread occupancy
	// from switch-in to switch-out, blocked intervals). Every emission is
	// gated on the nil check, so a scheduler without a tracer pays one
	// compare per site and gathers no timestamps.
	Tracer *trace.Tracer
	// PE labels this scheduler's spans with its processing element.
	PE int32
	// IdleBlock selects what the scheduler does when nothing is runnable
	// but external wakeups (message arrivals) remain possible: park the
	// host awaiting an interrupt (true; kind to real CPUs) or busy-poll
	// (false; the paper's interrupt-free Paragon behaviour, used by the
	// simulated experiments so poll counts match).
	IdleBlock bool
}

// SpawnOpts configures one thread at creation.
type SpawnOpts struct {
	// Priority orders ready threads; higher runs first, default 0.
	Priority int
	// Daemon threads do not keep the scheduler alive: when every regular
	// thread has finished, daemons are canceled and reaped. The Chant
	// server thread is a daemon.
	Daemon bool
}

// Sched is a cooperative user-level thread scheduler bound to one Host
// (one simulated processing element, or one goroutine-domain in real mode).
// All methods must be called from the scheduler's own context: inside Run,
// from one of its threads, or from the same process before Run.
type Sched struct {
	host machine.Host
	ctrs *trace.Counters
	opts Options

	ready   ReadyQueue
	cur     *TCB
	toSched chan struct{}

	nextID      int32
	liveRegular int
	liveTotal   int
	blocked     int
	threads     []*TCB
	finished    int // Done entries in threads awaiting pruning

	// preSchedule runs at every scheduling point in the run loop
	// (Scheduler-polls (WQ) walks its request list here).
	preSchedule func()
	// hasExternalWaiters reports whether some blocked thread can still be
	// woken by an external event (an outstanding receive), distinguishing
	// "keep polling" from deadlock when the ready queue is empty.
	hasExternalWaiters func() bool

	// killed is the asynchronous whole-scheduler termination request (a
	// simulated PE crash). It is the only cross-context input to the
	// scheduler: any goroutine may set it; the run loop and the Yield fast
	// path observe it at their next scheduling point.
	killed atomic.Bool

	pan *PanicError

	// owner is the chantdebug scheduling-domain token: exactly one
	// goroutine — the scheduler's or the running thread's trampoline —
	// holds it at a time, transferred at every coroutine handoff. Inert
	// (an empty struct) in release builds.
	owner check.Owner
}

// NewSched creates a scheduler charging host and counting into ctrs.
func NewSched(host machine.Host, ctrs *trace.Counters, opts Options) *Sched {
	return &Sched{
		host:    host,
		ctrs:    ctrs,
		opts:    opts,
		toSched: make(chan struct{}),
	}
}

// Host reports the scheduler's execution host.
func (s *Sched) Host() machine.Host { return s.host }

// Counters reports the scheduler's event counters.
func (s *Sched) Counters() *trace.Counters { return s.ctrs }

// EventLog reports the scheduler's attached event log (nil when none).
func (s *Sched) EventLog() *trace.Log { return s.opts.EventLog }

// Current reports the running thread, or nil from scheduler context.
func (s *Sched) Current() *TCB { return s.cur }

// SetPreSchedule installs fn to run at every scheduling point, before the
// next thread is chosen. The Scheduler-polls (WQ) algorithm uses this to
// test its outstanding-request list (paper Figure 6).
func (s *Sched) SetPreSchedule(fn func()) { s.preSchedule = fn }

// SetExternalWaiters installs a predicate reporting whether any blocked
// thread could still be woken by an external event. Without it, an empty
// ready queue with blocked threads is treated as a deadlock.
func (s *Sched) SetExternalWaiters(fn func() bool) { s.hasExternalWaiters = fn }

// Spawn creates a ready thread running fn with default options.
func (s *Sched) Spawn(name string, fn func()) *TCB {
	return s.SpawnWith(name, fn, SpawnOpts{})
}

// SpawnWith creates a ready thread running fn with the given options,
// charging the thread-creation cost.
func (s *Sched) SpawnWith(name string, fn func(), o SpawnOpts) *TCB {
	if check.Enabled {
		s.owner.Assert("Sched.SpawnWith")
	}
	t := &TCB{
		id:     s.nextID,
		name:   name,
		sched:  s,
		state:  Ready,
		prio:   o.Priority,
		daemon: o.Daemon,
		fn:     fn,
		resume: make(chan struct{}),
	}
	s.nextID++
	s.threads = append(s.threads, t)
	s.liveTotal++
	if !o.Daemon {
		s.liveRegular++
	}
	s.ctrs.ThreadsCreated.Add(1)
	s.host.Charge(s.host.Model().ThreadCreate)
	s.ready.Push(t)
	s.opts.EventLog.Add(s.host.Now(), trace.EvSpawn, t.id)
	return t
}

// Run spawns main as thread 0 and schedules until every regular
// (non-daemon) thread has finished, then cancels and reaps any remaining
// daemons. It returns ErrDeadlock (wrapped, with a state dump) if blocked
// threads remain with no possible wakeup source, and re-raises any panic
// that escaped a thread body as a *PanicError.
func (s *Sched) Run(main func()) error {
	if check.Enabled {
		s.owner.Acquire("sched " + s.opts.Name)
		defer s.owner.Release()
	}
	s.Spawn("main", main)
	m := s.host.Model()
	for s.liveRegular > 0 {
		if check.Enabled {
			s.audit()
		}
		if s.killed.Load() {
			s.killSweep()
		}
		if s.preSchedule != nil {
			s.preSchedule()
		}
		t := s.pickReady()
		if t == nil {
			if s.blocked == 0 {
				// Regular threads remain but none are ready or blocked:
				// impossible unless bookkeeping broke.
				panic("ult: scheduler invariant violated: live threads but none ready or blocked")
			}
			if s.hasExternalWaiters == nil || !s.hasExternalWaiters() {
				err := s.deadlockError()
				s.reapRemaining()
				return err
			}
			s.ctrs.IdleEntries.Add(1)
			s.opts.EventLog.Add(s.host.Now(), trace.EvIdle, -1)
			if s.opts.IdleBlock {
				s.host.Idle()
			} else {
				s.host.Charge(m.IdleRecheckGap)
			}
			continue
		}
		if t.Pending != nil && !t.canceled {
			// Partial context switch: inspect the TCB's outstanding
			// request without restoring the thread (paper Section 4.2,
			// Scheduler polls (PS)).
			s.ctrs.PartialSwitches.Add(1)
			s.host.Charge(m.PartialSwitch)
			s.opts.EventLog.Add(s.host.Now(), trace.EvPartialSwitch, t.id)
			if !t.Pending() {
				s.ready.Push(t)
				continue
			}
		}
		t.Pending = nil
		s.switchIn(t)
		if s.pan != nil {
			panic(s.pan)
		}
	}
	s.reapRemaining()
	if s.killed.Load() {
		return ErrKilled
	}
	return nil
}

// Kill requests asynchronous termination of the whole scheduler: at the
// next scheduling point every thread (including any spawned afterwards) is
// canceled, and Run returns ErrKilled once they have unwound. This is how a
// simulated PE crash takes its process down: safe to call from any context
// — a simulator event, a transport goroutine — because it only latches a
// flag and interrupts the host; all cancellation runs inside the
// scheduler's own loop, in deterministic thread-creation order.
func (s *Sched) Kill() {
	s.killed.Store(true)
	s.host.Interrupt()
}

// Killed reports whether Kill has been requested.
func (s *Sched) Killed() bool { return s.killed.Load() }

// killSweep cancels every live thread, in creation order. Runs in the
// scheduler's loop with the owner token held.
func (s *Sched) killSweep() {
	for _, t := range s.threads {
		if t.state != Done && !t.canceled {
			s.Cancel(t)
		}
	}
}

// pickReady removes and returns the first ready thread of the highest
// priority, or nil if the ready queue is empty. The indexed queue keeps
// within-priority FIFO order and honors priority changes made while queued
// (SetPriority relocates queued threads eagerly; see queue.go).
func (s *Sched) pickReady() *TCB {
	return s.ready.Pop()
}

// switchIn performs a complete context switch to t: the event the paper's
// CtxSw column counts.
func (s *Sched) switchIn(t *TCB) {
	s.ctrs.FullSwitches.Add(1)
	s.host.Charge(s.host.Model().FullSwitch)
	s.opts.EventLog.Add(s.host.Now(), trace.EvSwitchIn, t.id)
	var runBegin sim.Time
	if s.opts.Tracer != nil {
		runBegin = s.host.Now()
	}
	t.state = Running
	s.cur = t
	if check.Enabled {
		s.owner.Release()
	}
	if !t.started {
		t.started = true
		// The trampoline goroutine is a coroutine: resume/toSched handoff
		// keeps exactly one of {scheduler, thread} running at a time.
		//chant:allow-nondet strict coroutine handoff, no free interleaving
		go s.trampoline(t)
	} else {
		t.resume <- struct{}{}
	}
	<-s.toSched
	if s.opts.Tracer != nil {
		// One occupancy interval: this switch-in until the thread parked
		// (block, yield-with-switch) or finished and control came back.
		s.opts.Tracer.Span(trace.SpanRun, s.opts.PE, t.id, runBegin, s.host.Now(), 0)
	}
	if check.Enabled {
		s.owner.Acquire("sched " + s.opts.Name)
	}
	s.cur = nil
}

// trampoline is the goroutine body wrapping a thread function: it converts
// exit and cancel unwinds into completion, captures stray panics, and
// always returns control to the scheduler.
func (s *Sched) trampoline(t *TCB) {
	if check.Enabled {
		s.owner.Acquire("thread " + t.name)
	}
	defer func() {
		switch v := recover().(type) {
		case nil:
		case exitSignal:
			t.result = v.value
		case cancelSignal:
		default:
			s.pan = &PanicError{Thread: t.name, Value: v}
		}
		s.finish(t)
		if check.Enabled {
			s.owner.Release()
		}
		s.toSched <- struct{}{}
	}()
	if t.canceled {
		panic(cancelSignal{})
	}
	t.fn()
}

// finish marks t done, runs its thread-local destructors, updates live
// counts, and wakes its joiners.
func (s *Sched) finish(t *TCB) {
	t.state = Done
	t.Pending = nil
	t.runDestructors()
	s.opts.EventLog.Add(s.host.Now(), trace.EvExit, t.id)
	s.liveTotal--
	if !t.daemon {
		s.liveRegular--
	}
	for _, j := range t.joiners {
		s.Unblock(j)
	}
	t.joiners = nil
	s.finished++
	if s.finished >= 256 {
		s.pruneThreads()
	}
}

// pruneThreads drops Done entries from the bookkeeping slice so schedulers
// that spawn many short-lived threads do not grow without bound.
func (s *Sched) pruneThreads() {
	kept := s.threads[:0]
	for _, t := range s.threads {
		if t.state != Done {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(s.threads); i++ {
		s.threads[i] = nil
	}
	s.threads = kept
	s.finished = 0
}

// park returns control to the scheduler and blocks until this thread is
// switched in again. Callers must check t.canceled afterwards.
func (s *Sched) park(t *TCB) {
	if check.Enabled {
		s.owner.Release()
	}
	s.toSched <- struct{}{}
	<-t.resume
	if check.Enabled {
		s.owner.Acquire("thread " + t.name)
	}
}

// Yield gives up the processor to the next ready thread
// (pthread_chanter_yield). If no other thread is ready and the caller has
// no pending request, it returns immediately without a context switch —
// the single-thread fast path the paper credits with halving Table 2's
// worst-case overhead.
func (s *Sched) Yield() {
	t := s.mustCurrent("Yield")
	s.ctrs.Yields.Add(1)
	if t.canceled {
		panic(cancelSignal{})
	}
	if s.killed.Load() {
		// A lone spinning thread takes the no-switch fast path below and
		// might never return to the run loop, so the kill must also be a
		// cancellation point here.
		t.canceled = true
		if t.onCancel != nil {
			fn := t.onCancel
			t.onCancel = nil
			fn()
		}
		panic(cancelSignal{})
	}
	if s.ready.Len() == 0 && t.Pending == nil && s.preSchedule != nil {
		// A no-switch yield is still a scheduling point: the polling hook
		// must run or a lone spinning thread would starve every blocked
		// receiver. The hook may ready a thread, in which case the fast
		// path below no longer applies.
		s.preSchedule()
	}
	if s.ready.Len() == 0 && t.Pending == nil {
		s.ctrs.YieldsNoSwitch.Add(1)
		s.host.Charge(s.host.Model().YieldNoSwitch)
		s.opts.EventLog.Add(s.host.Now(), trace.EvYieldFast, t.id)
		return
	}
	t.state = Ready
	s.ready.Push(t)
	s.park(t)
	if t.canceled {
		panic(cancelSignal{})
	}
}

// Block removes the current thread from the run queue until some other
// agent calls Unblock on it. It is the primitive beneath mutexes, condition
// variables, join, and the scheduler-polling receive algorithms.
func (s *Sched) Block() {
	t := s.mustCurrent("Block")
	if t.canceled {
		panic(cancelSignal{})
	}
	t.state = Blocked
	s.blocked++
	s.opts.EventLog.Add(s.host.Now(), trace.EvBlock, t.id)
	if s.opts.Tracer != nil {
		t.blockedAt = s.host.Now()
	}
	s.park(t)
	if t.canceled {
		panic(cancelSignal{})
	}
}

// Unblock returns a blocked thread to the ready queue. It must be called
// from this scheduler's context (a running thread, a scheduling hook, or a
// cancel path).
func (s *Sched) Unblock(t *TCB) {
	if check.Enabled {
		s.owner.Assert("Sched.Unblock")
	}
	if t.state != Blocked {
		panic(fmt.Sprintf("ult: Unblock of %q in state %s", t.name, t.state))
	}
	t.state = Ready
	s.blocked--
	s.ready.Push(t)
	s.opts.EventLog.Add(s.host.Now(), trace.EvUnblock, t.id)
	if s.opts.Tracer != nil {
		s.opts.Tracer.Span(trace.SpanBlocked, s.opts.PE, t.id, t.blockedAt, s.host.Now(), 0)
	}
}

// Exit terminates the calling thread, making value available to joiners
// (pthread_chanter_exit).
func (s *Sched) Exit(value any) {
	s.mustCurrent("Exit")
	panic(exitSignal{value: value})
}

// Cancel requests that t exit as if it had called Exit
// (pthread_chanter_cancel). A blocked target is released to reach its next
// cancellation point; cleanup registered via OnCancel runs immediately.
// Canceling the calling thread exits at once; canceling a finished thread
// is a no-op.
func (s *Sched) Cancel(t *TCB) {
	if check.Enabled {
		s.owner.Assert("Sched.Cancel")
	}
	if t.state == Done || t.canceled {
		return
	}
	t.canceled = true
	s.opts.EventLog.Add(s.host.Now(), trace.EvCancel, t.id)
	if t.onCancel != nil {
		fn := t.onCancel
		t.onCancel = nil
		fn()
	}
	if t == s.cur {
		panic(cancelSignal{})
	}
	if t.state == Blocked {
		s.Unblock(t)
	}
}

// Join blocks the caller until t finishes and returns t's exit value
// (pthread_chanter_join). Joining a detached thread or self is an error;
// joining a canceled thread reports ErrCanceled.
func (s *Sched) Join(t *TCB) (any, error) {
	cur := s.mustCurrent("Join")
	if t == cur {
		return nil, ErrSelfJoin
	}
	if t.detached {
		return nil, ErrDetached
	}
	for t.state != Done {
		t.joiners = append(t.joiners, cur)
		cur.onCancel = func() { removeTCB(&t.joiners, cur) }
		s.Block()
		cur.onCancel = nil
	}
	if t.canceled {
		return nil, ErrCanceled
	}
	return t.result, nil
}

// reapRemaining cancels and unwinds every thread still alive, so daemon
// goroutines (like the Chant server thread) and deadlocked threads do not
// outlive their scheduler. Each unwind may finish threads and prune the
// bookkeeping slice, so the scan restarts after every reap.
func (s *Sched) reapRemaining() {
	for {
		var t *TCB
		for _, x := range s.threads {
			if x.state != Done {
				t = x
				break
			}
		}
		if t == nil {
			return
		}
		t.canceled = true
		if t.onCancel != nil {
			fn := t.onCancel
			t.onCancel = nil
			fn()
		}
		if !t.started {
			s.finish(t)
			continue
		}
		t.state = Running
		s.cur = t
		if check.Enabled {
			s.owner.Release()
		}
		t.resume <- struct{}{}
		<-s.toSched
		if check.Enabled {
			s.owner.Acquire("sched " + s.opts.Name)
		}
		s.cur = nil
	}
}

// deadlockError builds a diagnostic listing every live thread's state.
func (s *Sched) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler %q:", s.opts.Name)
	for _, t := range s.threads {
		if t.state != Done {
			fmt.Fprintf(&b, " [%d %s: %s]", t.id, t.name, t.state)
		}
	}
	return fmt.Errorf("%w (%s)", ErrDeadlock, b.String())
}

func (s *Sched) mustCurrent(op string) *TCB {
	if check.Enabled {
		s.owner.Assert("Sched." + op)
	}
	if s.cur == nil {
		panic("ult: " + op + " called outside any thread")
	}
	return s.cur
}

// audit cross-checks the scheduler's cached accounting — the blocked count,
// the ready queue, the live totals — against the ground truth of thread
// states. Run calls it at every scheduling iteration in chantdebug builds;
// a mismatch means some transition skipped its bookkeeping, so it panics
// with a full thread dump rather than let the run limp on.
func (s *Sched) audit() {
	var ready, blocked, regular, total int
	for _, t := range s.threads {
		switch t.state {
		case Ready:
			ready++
		case Blocked:
			blocked++
		case Running:
			check.Failf("sched %q: thread %d %q is Running at a scheduling point\n%s", s.opts.Name, t.id, t.name, s.dumpThreads())
		}
		if t.state != Done {
			total++
			if !t.daemon {
				regular++
			}
		}
	}
	if blocked != s.blocked {
		check.Failf("sched %q: blocked count is %d but %d threads are Blocked\n%s", s.opts.Name, s.blocked, blocked, s.dumpThreads())
	}
	if ready != s.ready.Len() {
		check.Failf("sched %q: ready queue holds %d entries but %d threads are Ready\n%s", s.opts.Name, s.ready.Len(), ready, s.dumpThreads())
	}
	if regular != s.liveRegular || total != s.liveTotal {
		check.Failf("sched %q: live counts (regular=%d total=%d) disagree with thread states (regular=%d total=%d)\n%s",
			s.opts.Name, s.liveRegular, s.liveTotal, regular, total, s.dumpThreads())
	}
	s.ready.Do(func(t *TCB) {
		if t.state != Ready {
			check.Failf("sched %q: ready queue contains thread %d %q in state %s\n%s", s.opts.Name, t.id, t.name, t.state, s.dumpThreads())
		}
		if !t.inReady || t.readyPrio != t.prio {
			check.Failf("sched %q: ready queue bookkeeping stale for thread %d %q (inReady=%v readyPrio=%d prio=%d)\n%s",
				s.opts.Name, t.id, t.name, t.inReady, t.readyPrio, t.prio, s.dumpThreads())
		}
	})
}

// dumpThreads renders every tracked thread for invariant-failure
// diagnostics.
func (s *Sched) dumpThreads() string {
	var b strings.Builder
	for _, t := range s.threads {
		mark := ""
		if t.daemon {
			mark = " daemon"
		}
		fmt.Fprintf(&b, "  [%d %s: %s%s]\n", t.id, t.name, t.state, mark)
	}
	return b.String()
}

// removeTCB deletes the first occurrence of t from *list, niling the vacated
// tail slot so the backing array does not pin the removed TCB alive.
func removeTCB(list *[]*TCB, t *TCB) {
	s := *list
	for i, x := range s {
		if x == t {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			*list = s[:len(s)-1]
			return
		}
	}
}
