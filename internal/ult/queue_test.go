package ult

import (
	"math/rand"
	"sort"
	"testing"
)

// churnPrios mixes the common bitmap-covered band with exotic priorities on
// both sides of it, so the above/below overflow paths and the bitmap
// boundary at 63/64 all see traffic.
var churnPrios = []int{-3, -1, 0, 0, 1, 2, 3, 3, 63, 64, 100}

// Differential check: ReadyQueue must pop the exact thread sequence the
// seed's linear scan produces under random push/pop/reprioritize churn.
// Twin TCBs (same id, same priority) drive the two queues in lockstep.
func TestReadyQueueDifferentialChurn(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var rq ReadyQueue
	var lq LinearQueue
	type pair struct{ a, b *TCB }
	queued := map[int32]*pair{}
	var nextID int32
	pops := 0
	for op := 0; op < 10000; op++ {
		switch c := r.Intn(10); {
		case c < 5 || len(queued) == 0: // push
			prio := churnPrios[r.Intn(len(churnPrios))]
			nextID++
			p := &pair{a: NewBenchTCB(nextID, prio), b: NewBenchTCB(nextID, prio)}
			rq.Push(p.a)
			lq.Push(p.b)
			queued[nextID] = p
		case c < 8: // pop
			a, b := rq.Pop(), lq.Pop()
			if (a == nil) != (b == nil) {
				t.Fatalf("op %d: Pop emptiness diverged: %v vs %v", op, a, b)
			}
			if a.id != b.id {
				t.Fatalf("op %d: Pop order diverged: id %d (prio %d) vs id %d (prio %d)",
					op, a.id, a.prio, b.id, b.prio)
			}
			delete(queued, a.id)
			pops++
		default: // reprioritize a queued thread
			var ids []int32
			for id := range queued {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			p := queued[ids[r.Intn(len(ids))]]
			to := churnPrios[r.Intn(len(churnPrios))]
			if to == p.a.prio {
				continue
			}
			from := p.a.prio
			p.a.prio = to
			rq.move(p.a, from, to)
			p.b.prio = to // the linear scan reads prio at pick time
		}
		if rq.Len() != lq.Len() {
			t.Fatalf("op %d: Len %d vs %d", op, rq.Len(), lq.Len())
		}
	}
	if pops == 0 {
		t.Fatal("churn never popped")
	}
	// Drain: remaining pops must agree too.
	for {
		a, b := rq.Pop(), lq.Pop()
		if a == nil && b == nil {
			break
		}
		if a == nil || b == nil || a.id != b.id {
			t.Fatalf("drain diverged: %v vs %v", a, b)
		}
	}
}

// Within-priority FIFO and cross-priority ordering must survive heavy mixed
// spawn/cancel/boost churn at the scheduler level: across 200 rounds (~10k
// spawns) workers must always execute in (descending final priority, spawn
// order) sequence.
func TestPriorityFIFOUnderChurn(t *testing.T) {
	s := newTestSched()
	r := rand.New(rand.NewSource(11))
	type rec struct{ prio, seq int }
	err := s.Run(func() {
		seq := 0
		for round := 0; round < 200; round++ {
			var log []rec
			var spawned []*TCB
			var prios []int
			n := 30 + r.Intn(40)
			for i := 0; i < n; i++ {
				prio := churnPrios[r.Intn(len(churnPrios))]
				mySeq := seq
				seq++
				w := s.SpawnWith("w", func() {
					me := s.Current()
					log = append(log, rec{prio: me.prio, seq: mySeq})
				}, SpawnOpts{Priority: prio})
				spawned = append(spawned, w)
				prios = append(prios, prio)
			}
			// Reprioritize a few while they sit in the ready queue.
			for i := 0; i < 5; i++ {
				j := r.Intn(n)
				p := churnPrios[r.Intn(len(churnPrios))]
				spawned[j].SetPriority(p)
				prios[j] = p
			}
			// Cancel a subset before it ever runs.
			canceled := make([]bool, n)
			for j := range spawned {
				if r.Intn(6) == 0 {
					s.Cancel(spawned[j])
					canceled[j] = true
				}
			}
			var want []rec
			for j := range spawned {
				if !canceled[j] {
					want = append(want, rec{prio: prios[j], seq: round0Seq(seq, n, j)})
				}
			}
			// Stable by spawn order, then stable sort by descending priority:
			// FIFO within a priority class.
			sort.SliceStable(want, func(i, j int) bool { return want[i].prio > want[j].prio })
			for _, w := range spawned {
				s.Join(w)
			}
			if len(log) != len(want) {
				t.Fatalf("round %d: ran %d workers, want %d", round, len(log), len(want))
			}
			for i := range want {
				if log[i] != want[i] {
					t.Fatalf("round %d: execution order diverged at %d:\n got %v\nwant %v",
						round, i, log, want)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// round0Seq recovers worker j's global spawn sequence number given the
// post-round counter and the round size.
func round0Seq(seqAfter, n, j int) int { return seqAfter - n + j }

// A priority lowered while queued must also take effect before the pick:
// the seed's scan read priorities at pick time, and the indexed queue
// relocates eagerly to match.
func TestPriorityLoweredWhileQueued(t *testing.T) {
	s := newTestSched()
	var order []string
	err := s.Run(func() {
		a := s.SpawnWith("a", func() { order = append(order, "a") }, SpawnOpts{Priority: 5})
		s.SpawnWith("b", func() { order = append(order, "b") }, SpawnOpts{Priority: 3})
		a.SetPriority(1) // demote a below b while both wait
		s.Yield()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("demoted thread did not yield its slot: %v", order)
	}
}

// Priorities outside the bitmap window [0,64) — negatives and 64+ — must
// order correctly against each other and against the bitmap band.
func TestExoticPriorityOrdering(t *testing.T) {
	s := newTestSched()
	var order []int
	err := s.Run(func() {
		for _, p := range []int{-3, 100, 0, 64, 63, -1, 7} {
			p := p
			s.SpawnWith("w", func() { order = append(order, p) }, SpawnOpts{Priority: p})
		}
		for i := 0; i < 10; i++ {
			s.Yield()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{100, 64, 63, 7, 0, -1, -3}
	if len(order) != len(want) {
		t.Fatalf("ran %d of %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
