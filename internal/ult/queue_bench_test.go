package ult

import "testing"

// Hot-path benchmarks: the indexed ready queue against the seed's linear
// scan, at the thread populations where the difference dominates a context
// switch. Each op is one pop + re-push cycle against a steady-state
// population, i.e. exactly the work pickReady does per scheduling decision.

type benchQueue interface {
	Push(*TCB)
	Pop() *TCB
}

func benchChurn(b *testing.B, q benchQueue, threads int) {
	b.Helper()
	for i := 0; i < threads; i++ {
		q.Push(NewBenchTCB(int32(i), i%8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(q.Pop())
	}
}

func BenchmarkHotPathReadyQueueChurn(b *testing.B) {
	for _, threads := range []int{10, 100, 1000} {
		b.Run(benchSize(threads), func(b *testing.B) {
			benchChurn(b, &ReadyQueue{}, threads)
		})
	}
}

func BenchmarkHotPathLinearQueueChurn(b *testing.B) {
	for _, threads := range []int{10, 100, 1000} {
		b.Run(benchSize(threads), func(b *testing.B) {
			benchChurn(b, &LinearQueue{}, threads)
		})
	}
}

func benchSize(n int) string {
	switch n {
	case 10:
		return "threads=10"
	case 100:
		return "threads=100"
	default:
		return "threads=1000"
	}
}
