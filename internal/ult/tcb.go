// Package ult implements the lightweight user-level thread package Chant
// builds on, providing the paper's Figure-2 capability set: thread
// management (create, exit, join, detach, cancel), cooperative scheduling
// with priorities and yield, thread-local data, and synchronization
// (mutexes and condition variables) — plus the two scheduler extension
// points the paper's polling algorithms need:
//
//   - a pre-schedule hook invoked at every scheduling point (used by the
//     Scheduler-polls (WQ) algorithm to walk its request list), and
//   - a per-TCB pending check honored during a *partial* context switch:
//     the scheduler inspects the next TCB and tests its outstanding request
//     before paying for a full restore (the Scheduler-polls (PS) algorithm).
//
// Threads are goroutine-backed but strictly cooperative: within one
// scheduler exactly one thread (or the scheduler itself) runs at a time,
// control moves only at explicit handoff points, and every complete context
// switch is counted and charged against the machine cost model. This makes
// the scheduler's behaviour — and therefore the paper's CtxSw and msgtest
// columns — deterministic under the simulation kernel.
package ult

import (
	"errors"
	"fmt"

	"chant/internal/sim"
)

// State describes where a thread is in its lifecycle.
type State int

const (
	// Ready threads are in the run queue (possibly with a pending request
	// awaiting a partial-switch test).
	Ready State = iota
	// Running is the single thread currently executing on the processor.
	Running
	// Blocked threads left the run queue and wait for an explicit Unblock
	// (mutex, condition variable, join, or a scheduler-polls receive).
	Blocked
	// Done threads have finished; their result awaits any joiner.
	Done
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return "invalid"
}

// Errors returned by thread-management operations.
var (
	// ErrDetached reports a join attempt on a detached thread.
	ErrDetached = errors.New("ult: thread is detached")
	// ErrSelfJoin reports a thread attempting to join itself.
	ErrSelfJoin = errors.New("ult: thread cannot join itself")
	// ErrCanceled is the join result for a thread that was canceled.
	ErrCanceled = errors.New("ult: thread was canceled")
	// ErrDeadlock reports a scheduler with blocked threads and no possible
	// source of wakeups.
	ErrDeadlock = errors.New("ult: deadlock: blocked threads with no wakeup source")
	// ErrKilled reports a scheduler terminated by Kill (a simulated PE
	// crash or an external shutdown): every thread was canceled and the run
	// did not complete normally.
	ErrKilled = errors.New("ult: scheduler killed")
)

// exitSignal and cancelSignal unwind a thread's stack to its trampoline.
type exitSignal struct{ value any }
type cancelSignal struct{}

// PanicError wraps a panic that escaped a thread body, carrying the thread's
// identity for diagnosis. The scheduler re-raises it in the context that
// called Run.
type PanicError struct {
	Thread string
	Value  any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("ult: thread %q panicked: %v", e.Thread, e.Value)
}

// TCB is a thread control block: the unit the scheduler manages, directly
// mirroring the paper's TCB discussion in Section 4.2.
type TCB struct {
	id    int32
	name  string
	sched *Sched
	state State
	prio  int
	fn    func()

	started bool
	resume  chan struct{}

	// Ready-queue bookkeeping (see queue.go): enqueue sequence number (the
	// within-priority FIFO tiebreak), the priority bucket the TCB currently
	// sits in, and whether it is queued at all. readyPrio can lag prio only
	// between SetPriority's update and the move it triggers.
	readySeq  uint64
	readyPrio int
	inReady   bool

	// Pending, when non-nil, is this thread's outstanding polling request
	// (Scheduler-polls (PS)): the scheduler invokes it during a partial
	// switch and only restores the thread when it reports true. The check
	// itself charges its own cost (it is a msgtest in the comm layer).
	Pending func() bool

	daemon   bool
	detached bool
	canceled bool
	result   any
	joiners  []*TCB

	// onCancel is cleanup run synchronously by Cancel while the thread is
	// parked: it removes the thread from whatever waiter list it is on so
	// the cancel unwind needs no cleanup of its own.
	onCancel func()

	// WaitBox is scratch storage the process's polling policy attaches to
	// the thread, so per-wait state (the pending check, the cancel hook)
	// can live in one reusable allocation per thread instead of fresh
	// closures on every blocking receive. Owned entirely by the policy;
	// the scheduler never looks inside.
	WaitBox any

	// blockedAt remembers when this thread last blocked, so Unblock can
	// emit the blocked-interval span. Only maintained when the scheduler
	// has a tracer attached.
	blockedAt sim.Time

	locals map[*Key]any
	// localOrder remembers key insertion order so destructors run
	// deterministically (map iteration order would vary run to run, which
	// the simulated experiments cannot tolerate).
	localOrder []*Key
}

// SetOnCancel registers cleanup to run if this thread is canceled while
// waiting; blocking primitives install it before parking and clear it
// after. Passing nil clears it.
func (t *TCB) SetOnCancel(fn func()) { t.onCancel = fn }

// ID reports the thread's scheduler-local identifier. The main thread of a
// scheduler has ID 0; subsequent threads count up from 1.
func (t *TCB) ID() int32 { return t.id }

// Name reports the thread's debug name.
func (t *TCB) Name() string { return t.name }

// State reports the thread's current lifecycle state.
func (t *TCB) State() State { return t.state }

// Priority reports the thread's scheduling priority (higher runs first).
func (t *TCB) Priority() int { return t.prio }

// SetPriority changes the thread's priority. Taking effect at the next
// scheduling decision, it implements the paper's server-thread boost: "the
// server thread assumes a higher scheduling priority ... ensuring that it
// is scheduled at the next context switch point". If the thread is sitting
// in the ready queue, it is relocated to its new priority's deque at its
// enqueue-order rank, so the next pick sees the change exactly as the old
// pick-time linear scan did.
func (t *TCB) SetPriority(p int) {
	if p == t.prio {
		return
	}
	old := t.prio
	t.prio = p
	if t.inReady && t.sched != nil {
		t.sched.ready.move(t, old, p)
	}
}

// Daemon reports whether the thread is a daemon (the scheduler does not
// wait for daemons; they are reaped when all regular threads finish).
func (t *TCB) Daemon() bool { return t.daemon }

// Canceled reports whether cancellation has been requested.
func (t *TCB) Canceled() bool { return t.canceled }

// Detach marks the thread's storage for reclamation on exit, so no thread
// may join it (pthread_chanter_detach).
func (t *TCB) Detach() { t.detached = true }

// Detached reports whether the thread has been detached.
func (t *TCB) Detached() bool { return t.detached }
