package ult

import (
	"errors"
	"testing"
)

func TestMutexMutualExclusion(t *testing.T) {
	s := newTestSched()
	m := NewMutex(s)
	inCrit := 0
	maxCrit := 0
	err := s.Run(func() {
		for i := 0; i < 4; i++ {
			s.Spawn("w", func() {
				for j := 0; j < 5; j++ {
					m.Lock()
					inCrit++
					if inCrit > maxCrit {
						maxCrit = inCrit
					}
					s.Yield() // try to provoke interleaving inside the section
					inCrit--
					m.Unlock()
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxCrit != 1 {
		t.Fatalf("critical section held by %d threads at once", maxCrit)
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	s := newTestSched()
	m := NewMutex(s)
	var order []int
	err := s.Run(func() {
		m.Lock()
		for i := 0; i < 3; i++ {
			i := i
			s.Spawn("w", func() {
				m.Lock()
				order = append(order, i)
				m.Unlock()
			})
		}
		s.Yield() // all three queue behind us in spawn order
		m.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("lock handoff not FIFO: %v", order)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	s := newTestSched()
	m := NewMutex(s)
	err := s.Run(func() {
		if !m.TryLock() {
			t.Error("TryLock on free mutex failed")
		}
		w := s.Spawn("w", func() {
			if m.TryLock() {
				t.Error("TryLock on held mutex succeeded")
			}
		})
		s.Join(w)
		m.Unlock()
		if m.Locked() {
			t.Error("mutex still locked after Unlock")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMutexMisusePanics(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		m := NewMutex(s)
		m.Lock()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("recursive lock did not panic")
				}
			}()
			m.Lock()
		}()
		m.Unlock()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unlock by non-owner did not panic")
				}
			}()
			m.Unlock()
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMutexCancelWaiter(t *testing.T) {
	s := newTestSched()
	m := NewMutex(s)
	err := s.Run(func() {
		m.Lock()
		victim := s.Spawn("victim", func() {
			m.Lock()
			t.Error("canceled waiter acquired the lock body")
			m.Unlock()
		})
		other := s.Spawn("other", func() {
			m.Lock()
			m.Unlock()
		})
		s.Yield() // both queue up
		s.Cancel(victim)
		m.Unlock()
		if _, err := s.Join(victim); !errors.Is(err, ErrCanceled) {
			t.Errorf("victim join: %v", err)
		}
		if _, err := s.Join(other); err != nil {
			t.Errorf("other join: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondSignal(t *testing.T) {
	s := newTestSched()
	m := NewMutex(s)
	c := NewCond(m)
	queue := []int{}
	err := s.Run(func() {
		consumer := s.Spawn("consumer", func() {
			m.Lock()
			for len(queue) == 0 {
				c.Wait()
			}
			got := queue[0]
			queue = queue[1:]
			m.Unlock()
			if got != 99 {
				t.Errorf("consumed %d, want 99", got)
			}
		})
		s.Yield() // consumer waits
		m.Lock()
		queue = append(queue, 99)
		c.Signal()
		m.Unlock()
		s.Join(consumer)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondBroadcast(t *testing.T) {
	s := newTestSched()
	m := NewMutex(s)
	c := NewCond(m)
	released := 0
	go_ := false
	err := s.Run(func() {
		var waiters []*TCB
		for i := 0; i < 3; i++ {
			waiters = append(waiters, s.Spawn("w", func() {
				m.Lock()
				for !go_ {
					c.Wait()
				}
				released++
				m.Unlock()
			}))
		}
		s.Yield()
		m.Lock()
		go_ = true
		c.Broadcast()
		m.Unlock()
		for _, w := range waiters {
			s.Join(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if released != 3 {
		t.Fatalf("broadcast released %d of 3", released)
	}
}

func TestCondWaitWithoutMutexPanics(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		m := NewMutex(s)
		c := NewCond(m)
		defer func() {
			if recover() == nil {
				t.Error("Cond.Wait without mutex did not panic")
			}
		}()
		c.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondSignalNoWaitersIsNoop(t *testing.T) {
	s := newTestSched()
	err := s.Run(func() {
		m := NewMutex(s)
		c := NewCond(m)
		c.Signal()
		c.Broadcast()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThreadLocalData(t *testing.T) {
	s := newTestSched()
	key := NewKey("slot", nil)
	err := s.Run(func() {
		a := s.Spawn("a", func() {
			me := s.Current()
			me.SetLocal(key, "A")
			s.Yield()
			if me.Local(key) != "A" {
				t.Error("thread-local value lost across yield")
			}
		})
		b := s.Spawn("b", func() {
			me := s.Current()
			if me.Local(key) != nil {
				t.Error("thread-local value leaked between threads")
			}
			me.SetLocal(key, "B")
			me.SetLocal(key, nil) // delete
			if me.Local(key) != nil {
				t.Error("delete did not remove the value")
			}
		})
		s.Join(a)
		s.Join(b)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThreadLocalDestructor(t *testing.T) {
	s := newTestSched()
	var destroyed []any
	key := NewKey("res", func(v any) { destroyed = append(destroyed, v) })
	err := s.Run(func() {
		w := s.Spawn("w", func() {
			s.Current().SetLocal(key, "resource")
		})
		s.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(destroyed) != 1 || destroyed[0] != "resource" {
		t.Fatalf("destructor calls = %v", destroyed)
	}
}
