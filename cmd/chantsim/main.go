// Command chantsim runs custom polling-experiment configurations on the
// simulated machine — the knobs behind Tables 3-5, exposed for
// exploration — and prints one CSV row (or aligned text) per run.
//
// Examples:
//
//	chantsim -policy ps -alpha 5000 -beta 100 -workers 16 -msg 2048
//	chantsim -policy all -alpha 100,1000,10000 -csv
//	chantsim -policy wq,wq-any -model modern -workers 24
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chant/internal/core"
	"chant/internal/experiments"
	"chant/internal/machine"
)

var policyNames = map[string]core.PolicyKind{
	"tp":     core.ThreadPolls,
	"ps":     core.SchedulerPollsPS,
	"wq":     core.SchedulerPollsWQ,
	"wq-any": core.SchedulerPollsWQAny,
}

func main() {
	var (
		policy  = flag.String("policy", "all", "tp|ps|wq|wq-any, comma-separated, or all")
		alphas  = flag.String("alpha", "1000", "comma-separated compute(alpha) sizes")
		beta    = flag.Int64("beta", 100, "compute(beta) size")
		workers = flag.Int("workers", 12, "threads per PE")
		iters   = flag.Int("iters", 100, "send/recv iterations per thread")
		msg     = flag.Int("msg", 4096, "message size in bytes")
		shift   = flag.Int("shift", 1, "partner-pairing shift")
		jitter  = flag.Int64("jitter", 0, "compute jitter percent (deterministic, seeded)")
		seed    = flag.Uint64("seed", 7, "workload RNG seed")
		model   = flag.String("model", "paragon", "paragon|modern")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	var m *machine.Model
	switch *model {
	case "paragon":
		m = machine.Paragon1994()
	case "modern":
		m = machine.Modern()
	default:
		fmt.Fprintf(os.Stderr, "chantsim: unknown model %q\n", *model)
		os.Exit(2)
	}

	var policies []core.PolicyKind
	if *policy == "all" {
		policies = []core.PolicyKind{core.ThreadPolls, core.SchedulerPollsPS,
			core.SchedulerPollsWQ, core.SchedulerPollsWQAny}
	} else {
		for _, name := range strings.Split(*policy, ",") {
			k, ok := policyNames[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "chantsim: unknown policy %q\n", name)
				os.Exit(2)
			}
			policies = append(policies, k)
		}
	}

	var alphaList []int64
	for _, a := range strings.Split(*alphas, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chantsim: bad alpha %q\n", a)
			os.Exit(2)
		}
		alphaList = append(alphaList, v)
	}

	if *csv {
		fmt.Println("policy,alpha,beta,workers,msg,time_ms,ctxsw,partialsw,msgtest,msgtest_fails,testany,avg_waiting")
	} else {
		fmt.Printf("%-8s %8s %8s %9s %7s %9s %8s %9s\n",
			"policy", "alpha", "time ms", "ctxsw", "partial", "msgtest", "fails", "avg wait")
	}
	for _, pol := range policies {
		for _, alpha := range alphaList {
			row := experiments.RunPolling(experiments.PollingConfig{
				Workers:   *workers,
				Iters:     *iters,
				Alpha:     alpha,
				Beta:      *beta,
				MsgSize:   *msg,
				Shift:     int32(*shift),
				JitterPct: *jitter,
				Seed:      *seed,
				Policy:    pol,
				Model:     m,
			})
			if *csv {
				fmt.Printf("%v,%d,%d,%d,%d,%.3f,%d,%d,%d,%d,%d,%.3f\n",
					pol, alpha, *beta, *workers, *msg, row.TimeMS, row.CtxSw,
					row.PartialSw, row.MsgTest, row.MsgTestFails, row.TestAnyCalls, row.AvgWaiting)
			} else {
				fmt.Printf("%-8s %8d %8.1f %9d %7d %9d %8d %9.2f\n",
					short(pol), alpha, row.TimeMS, row.CtxSw, row.PartialSw,
					row.MsgTest, row.MsgTestFails, row.AvgWaiting)
			}
		}
	}
}

func short(k core.PolicyKind) string {
	for name, v := range policyNames {
		if v == k {
			return name
		}
	}
	return k.String()
}
