// Command chantvet checks the Chant codebase against the runtime's unwritten
// contracts: scheduler-context-only calls (schedctx), determinism of the
// simulation-critical packages (detlint), instrumentation/lock discipline
// (ctrlock), nondeterminism reachable from simulation-critical roots
// (ndtaint, interprocedural via facts and the call graph), and must-release
// of pooled messages and receive handles (handleleak). See each analyzer's
// package documentation for what it reports and DESIGN.md's "Correctness
// tooling" section for the conventions (including the //chant:allow-nondet
// and //chant:allow-leak suppression comments).
//
// Two ways to run it:
//
//	go vet -vettool=$(which chantvet) ./...   # unit-at-a-time, facts compose via .vetx files
//	chantvet ./...                            # standalone, whole-program
//
// Standalone mode accepts output and rewrite flags:
//
//	-json       emit findings as a JSON array instead of text
//	-sarif      emit a SARIF 2.1.0 log (for CI code-scanning upload)
//	-fix        apply the analyzers' suggested fixes to the source files
//
// Both modes report findings (text mode as `file:line:col: analyzer:
// message`) and exit 2 when any diagnostic is found.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"chant/internal/analysis"
	"chant/internal/analysis/load"
	"chant/internal/analysis/registry"
	"chant/internal/analysis/render"
	"chant/internal/analysis/unitcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go command probes its vet tool before first use: `-V=full` must
	// print an identification line used as a cache key, and `-flags` must
	// dump the supported flags as JSON.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			printVersion()
			return 0
		case "-flags", "--flags":
			printFlags()
			return 0
		}
	}

	fs := flag.NewFlagSet("chantvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: chantvet [-json|-sarif] [-fix] [packages]   (standalone)\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=chantvet [packages]\n\nAnalyzers:\n")
		for _, a := range registry.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	isAnalyzer := make(map[string]bool)
	for _, a := range registry.Analyzers() {
		fs.Bool(a.Name, false, a.Doc)
		isAnalyzer[a.Name] = true
	}
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	chosen := flagSet{}
	fs.Visit(func(f *flag.Flag) {
		if isAnalyzer[f.Name] {
			chosen[f.Name] = f.Value.String() == "true"
		}
	})
	analyzers := selectAnalyzers(chosen)

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		// go vet unit mode: one JSON config describing a single package.
		n, err := unitcheck.Run(stderr, rest[0], analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "chantvet: %v\n", err)
			return 1
		}
		if n > 0 {
			return 2
		}
		return 0
	}

	// Standalone mode: load the named packages (default ./...) ourselves and
	// analyze them as one program.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "chantvet: %v\n", err)
		return 1
	}
	findings, err := registry.RunAll(pkgs, analyzers, nil)
	if err != nil {
		fmt.Fprintf(stderr, "chantvet: %v\n", err)
		return 1
	}

	switch {
	case *jsonOut:
		err = render.JSON(stdout, findings)
	case *sarifOut:
		err = render.SARIF(stdout, findings, analyzers)
	default:
		err = render.Text(stderr, findings)
	}
	if err != nil {
		fmt.Fprintf(stderr, "chantvet: %v\n", err)
		return 1
	}

	if *fix {
		if err := applyFixes(stderr, findings); err != nil {
			fmt.Fprintf(stderr, "chantvet: %v\n", err)
			return 1
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// applyFixes rewrites the source files with every suggested fix carried by
// the findings, reporting each touched file.
func applyFixes(stderr io.Writer, findings []registry.Finding) error {
	var diags []analysis.Diagnostic
	nfixes := 0
	for _, f := range findings {
		if len(f.SuggestedFixes) > 0 {
			diags = append(diags, f.Diagnostic)
			nfixes += len(f.SuggestedFixes)
		}
	}
	if nfixes == 0 {
		return nil
	}
	fixed, err := analysis.ApplyFixes(findings[0].Fset, diags, os.ReadFile)
	if err != nil {
		return err
	}
	for name, content := range fixed {
		if err := os.WriteFile(name, content, 0o666); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "chantvet: fixed %s\n", name)
	}
	fmt.Fprintf(stderr, "chantvet: applied %d suggested fixes to %d files\n", nfixes, len(fixed))
	return nil
}

type flagSet map[string]bool

// selectAnalyzers honors vet's convention: setting any analyzer flag true
// runs just those analyzers; setting only false flags runs all but those;
// naming none runs them all.
func selectAnalyzers(chosen flagSet) []*analysis.Analyzer {
	all := registry.Analyzers()
	anyTrue := false
	for _, v := range chosen {
		anyTrue = anyTrue || v
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		v, named := chosen[a.Name]
		if anyTrue && !v {
			continue // whitelist mode: only the flags set true
		}
		if !anyTrue && named && !v {
			continue // blacklist mode: all but the flags set false
		}
		out = append(out, a)
	}
	return out
}

// printVersion emits the `-V=full` identification line. The content hash of
// the executable keys the go command's vet result cache, so rebuilding
// chantvet invalidates stale results.
func printVersion() {
	name := "chantvet"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

// printFlags dumps the flag set in the JSON shape the go command parses.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range registry.Analyzers() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	flags = append(flags, jsonFlag{Name: "json", Bool: true, Usage: "emit findings as JSON"})
	data, err := json.Marshal(flags)
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}
