// Command chantvet checks the Chant codebase against the runtime's unwritten
// contracts: scheduler-context-only calls (schedctx), determinism of the
// simulation-critical packages (detlint), and instrumentation/lock
// discipline (ctrlock). See each analyzer's package documentation for what
// it reports and DESIGN.md's "Correctness tooling" section for the
// conventions (including the //chant:allow-nondet suppression comment).
//
// Two ways to run it:
//
//	go vet -vettool=$(which chantvet) ./...   # unit-at-a-time, via the go command
//	chantvet ./...                            # standalone, loads packages itself
//
// Both report `file:line:col: analyzer: message` and exit nonzero when any
// diagnostic is found.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"chant/internal/analysis"
	"chant/internal/analysis/load"
	"chant/internal/analysis/registry"
	"chant/internal/analysis/unitcheck"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes its vet tool before first use: `-V=full` must
	// print an identification line used as a cache key, and `-flags` must
	// dump the supported flags as JSON.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			printVersion()
			return 0
		case "-flags", "--flags":
			printFlags()
			return 0
		}
	}

	fs := flag.NewFlagSet("chantvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: chantvet [packages]            (standalone)\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=chantvet [packages]\n\nAnalyzers:\n")
		for _, a := range registry.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	isAnalyzer := make(map[string]bool)
	for _, a := range registry.Analyzers() {
		fs.Bool(a.Name, false, a.Doc)
		isAnalyzer[a.Name] = true
	}
	jsonOut := fs.Bool("json", false, "accepted for vet compatibility (output is always plain text)")
	_ = jsonOut
	if err := fs.Parse(args); err != nil {
		return 2
	}
	chosen := flagSet{}
	fs.Visit(func(f *flag.Flag) {
		if isAnalyzer[f.Name] {
			chosen[f.Name] = f.Value.String() == "true"
		}
	})
	analyzers := selectAnalyzers(chosen)

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		// go vet unit mode: one JSON config describing a single package.
		n, err := unitcheck.Run(os.Stderr, rest[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chantvet: %v\n", err)
			return 1
		}
		if n > 0 {
			return 2
		}
		return 0
	}

	// Standalone mode: load the named packages (default ./...) ourselves.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chantvet: %v\n", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := registry.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chantvet: %s: %v\n", pkg.PkgPath, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		found += len(diags)
	}
	if found > 0 {
		return 2
	}
	return 0
}

type flagSet map[string]bool

// selectAnalyzers honors vet's convention: setting any analyzer flag true
// runs just those analyzers; setting only false flags runs all but those;
// naming none runs them all.
func selectAnalyzers(chosen flagSet) []*analysis.Analyzer {
	all := registry.Analyzers()
	anyTrue := false
	for _, v := range chosen {
		anyTrue = anyTrue || v
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		v, named := chosen[a.Name]
		if anyTrue && !v {
			continue // whitelist mode: only the flags set true
		}
		if !anyTrue && named && !v {
			continue // blacklist mode: all but the flags set false
		}
		out = append(out, a)
	}
	return out
}

// printVersion emits the `-V=full` identification line. The content hash of
// the executable keys the go command's vet result cache, so rebuilding
// chantvet invalidates stale results.
func printVersion() {
	name := "chantvet"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

// printFlags dumps the flag set in the JSON shape the go command parses.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range registry.Analyzers() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	flags = append(flags, jsonFlag{Name: "json", Bool: true, Usage: "accepted for vet compatibility"})
	data, err := json.Marshal(flags)
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}
