// Command chantbench regenerates the paper's evaluation: every table and
// figure of "On the Design of Chant" (Section 4), plus the ablations
// described in DESIGN.md, printed next to the paper's published values.
//
// Usage:
//
//	chantbench                         # run everything, terminal rendering
//	chantbench -exp table3             # one experiment
//	chantbench -report -md             # full Markdown report (EXPERIMENTS.md)
//	chantbench -exp table2 -rounds 2000
//
// Experiments: table1 table2 fig8 table3 table4 table5 fig10 fig11 fig12
// fig13 ablation-testany ablation-fastpath ablation-delivery
// ablation-scaling modern hotpath all
//
// chantbench -json runs the hot-path A/B benchmarks (indexed ready queue,
// bucketed matching, pooled ping-pong) and emits machine-readable JSON;
// redirect it to BENCH_hotpath.json. chantbench -exp parallel -json runs
// the parallel-kernel scaling sweep instead (sequential vs parallel wall
// clock on a 32-PE workload across GOMAXPROCS); redirect it to
// BENCH_parallel.json. Adding -baseline BENCH_parallel.json gates the sweep
// against the committed figures: a best_speedup regression of more than 10%
// exits nonzero (skipped on hosts with fewer than 4 cores). chantbench
// -exp recovery -json measures the crash recovery subsystem (checkpoint
// capture cost, marker overhead, restart-to-rejoin latency); redirect it to
// BENCH_recovery.json. chantbench -exp real -json measures the real-mode
// data plane (per-policy ping-pong latency and allocations, zero-copy
// direct share, streaming bandwidth, multi-producer batched-vs-serial
// drain); redirect it to BENCH_real.json, and add -baseline BENCH_real.json
// to gate latency (25% slack) and allocs/op against the committed figures.
//
// -cpuprofile and -memprofile write pprof profiles of whatever was run, so
// performance PRs can attach evidence for the hot spots they claim.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"chant/internal/core"
	"chant/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run is main's body with a normal return path, so the pprof defers fire
// before the process exits.
func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment to run (see package comment)")
		md         = flag.Bool("md", false, "render Markdown instead of terminal tables")
		report     = flag.Bool("report", false, "run everything and emit the full report")
		rounds     = flag.Int("rounds", 0, "table2 exchanges per size (default 500)")
		asJSON     = flag.Bool("json", false, "run the hot-path A/B benchmarks and emit JSON (BENCH_hotpath.json)")
		baseline   = flag.String("baseline", "", "with -exp parallel|real and -json: committed BENCH_*.json to gate against (parallel: best_speedup may not regress >10%, skipped on hosts with <4 cores; real: latency 25% slack, allocs/op 10%+0.5)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (post-GC) to this file at exit")
		traceOut   = flag.String("trace-out", "", "run one traced Table-3 polling cell and write its spans as Perfetto/Chrome trace JSON to this file, then exit")
	)
	flag.Parse()

	if *traceOut != "" {
		return writePollingTrace(*traceOut)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chantbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "chantbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chantbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "chantbench: %v\n", err)
			}
		}()
	}

	if *asJSON {
		var payload any
		var par *experiments.ParallelResult
		var realRes *experiments.RealResult
		switch *exp {
		case "parallel":
			r := experiments.RunParallel()
			par, payload = &r, r
		case "recovery":
			payload = experiments.RunRecovery()
		case "real":
			r := experiments.RunReal()
			realRes, payload = &r, r
		default:
			payload = experiments.RunHotPath()
		}
		out, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chantbench: %v\n", err)
			return 1
		}
		fmt.Println(string(out))
		if *baseline != "" && par != nil {
			if !checkParallelBaseline(*baseline, par) {
				return 1
			}
		}
		if *baseline != "" && realRes != nil {
			if !checkRealBaseline(*baseline, realRes) {
				return 1
			}
		}
		return 0
	}

	if *report {
		fmt.Print(experiments.FullReport(*md))
		return 0
	}

	runExp := func(name string) {
		switch name {
		case "table1":
			fmt.Println("Table 1: thread package operations")
			fmt.Print(experiments.FormatTable1(experiments.RunTable1(8000), *md))
		case "table2":
			fmt.Println("Table 2: thread-based point-to-point overhead")
			rows := experiments.RunTable2(experiments.Table2Config{Rounds: *rounds})
			fmt.Print(experiments.FormatTable2(rows, *md))
		case "fig8":
			rows := experiments.RunTable2(experiments.Table2Config{Rounds: *rounds})
			fmt.Print(experiments.FormatFig8(rows))
		case "table3", "table4", "table5":
			beta := experiments.PaperBetaFor[name]
			paper := map[string]experiments.PaperPollingTable{
				"table3": experiments.PaperTable3,
				"table4": experiments.PaperTable4,
				"table5": experiments.PaperTable5,
			}[name]
			fmt.Printf("%s: polling algorithms, beta=%d\n",
				strings.ToUpper(name[:1])+name[1:], beta)
			s := experiments.RunPollingSweep(beta, nil, experiments.StandardPollingBase)
			fmt.Print(experiments.FormatPollingSweep(s, paper, *md))
		case "fig10", "fig11", "fig12", "fig13":
			s := experiments.RunPollingSweep(100, nil, experiments.StandardPollingBase)
			switch name {
			case "fig10":
				fmt.Print(experiments.FormatPollingChart(s, "time", "Figure 10: execution time", "ms"))
			case "fig11":
				fmt.Print(experiments.FormatPollingChart(s, "ctxsw", "Figure 11: context switches", ""))
			case "fig12":
				fmt.Print(experiments.FormatPollingChart(s, "msgtest", "Figure 12: msgtest calls", ""))
			case "fig13":
				fmt.Print(experiments.FormatPollingChart(s, "waiting", "Figure 13: average waiting threads", ""))
			}
		case "ablation-testany":
			fmt.Println("Ablation A: WQ with msgtestany (paper Section 4.2 hypothesis)")
			fmt.Print(experiments.FormatPollingSweep(experiments.RunAblationTestAny(), experiments.PaperTable3, *md))
		case "ablation-fastpath":
			fmt.Println("Ablation B: single-thread yield fast path")
			fmt.Print(experiments.FormatAblationFastPath(experiments.RunAblationFastPath(), *md))
		case "ablation-delivery":
			fmt.Println("Ablation C: delivery designs (Section 3.1)")
			fmt.Print(experiments.FormatAblationDelivery(experiments.RunAblationDelivery(), *md))
		case "modern":
			fmt.Println("Contrast: the polling experiment on a modern cost model")
			s := experiments.RunModernContrast()
			fmt.Print(experiments.FormatPollingSweep(s, nil, *md))
		case "ablation-scaling":
			fmt.Println("Ablation E: polling cost vs thread population")
			fmt.Print(experiments.FormatScaling(experiments.RunScaling(nil), *md))
		case "parallel":
			fmt.Println("Parallel kernel: 32-PE workload, sequential vs sharded (wall clock)")
			r := experiments.RunParallel()
			fmt.Printf("  sequential: %8.1f ms  (%d PEs, %d workers/PE, %d host cores)\n",
				r.SeqWallMS, r.PEs, r.Workers, r.HostCores)
			for _, row := range r.Rows {
				ok := "identical"
				if !row.Identical {
					ok = "DIVERGED"
				}
				fmt.Printf("  GOMAXPROCS=%d shards=%d: %8.1f ms  %.2fx  %s\n",
					row.GOMAXPROCS, row.Shards, row.WallMS, row.Speedup, ok)
			}
		case "recovery":
			fmt.Println("Crash recovery: checkpoint capture, marker overhead, rejoin latency")
			r := experiments.RunRecovery()
			fmt.Printf("  baseline run:            %10.3f ms virtual\n", r.BaselineVirtualMS)
			fmt.Printf("  with one checkpoint:     %10.3f ms virtual  (+%.3f%% marker overhead)\n",
				r.CheckpointVirtualMS, r.MarkerOverheadPct)
			fmt.Printf("  capture (initiator):     %10.1f us virtual  (%d + %d checkpoint bytes)\n",
				r.CaptureVirtualUS, r.CheckpointBytesPE0, r.CheckpointBytesPE1)
			fmt.Printf("  encode:                  %10.1f ns/snapshot wall\n", r.EncodeNsPerSnapshot)
			fmt.Printf("  restart-to-rejoin:       %10.1f us virtual  (epoch %d, crash run %.3f ms)\n",
				r.RejoinLatencyVirtualUS, r.RestartEpoch, r.CrashRunVirtualMS)
		case "real":
			fmt.Println("Real-mode data plane: ingress ring, zero-copy receive, streaming (wall clock)")
			r := experiments.RunReal()
			for _, row := range r.Rows {
				fmt.Printf("  ping-pong %-20s %8.1f ns/op  %.1f allocs/op\n",
					row.Policy+":", row.PingPongNsOp, row.PingPongAllocsOp)
			}
			fmt.Printf("  zero-copy direct share (PS): %.1f%%\n", r.DirectShare*100)
			fmt.Printf("  streaming 4 KiB:             %8.0f msgs/s  %.0f MB/s\n",
				r.StreamMsgsPerSec, r.StreamMBPerSec)
			for _, row := range r.MultiProducer {
				fmt.Printf("  %d senders -> 1:  batched %8.1f ns/round  serial %8.1f ns/round  %.2fx  (%.1f msgs/batch)\n",
					row.Senders, row.BatchedNsOp, row.SerialNsOp, row.Speedup, row.AvgBatch)
			}
		case "hotpath":
			fmt.Println("Hot paths: constant-time structures vs the seed's linear scans (wall clock)")
			r := experiments.RunHotPath()
			fmt.Printf("  ready queue, 1000 threads:   %8.1f ns/op indexed  %8.1f ns/op linear  (%.1fx)\n",
				r.QueueIndexedNsOp, r.QueueLinearNsOp, r.QueueSpeedup)
			fmt.Printf("  matching, 1000 outstanding:  %8.1f ns/op bucketed %8.1f ns/op linear  (%.1fx)\n",
				r.MatchBucketedNsOp, r.MatchLinearNsOp, r.MatchSpeedup)
			fmt.Printf("  memnet ping-pong round trip: %8.1f ns/op  %.1f allocs/op\n",
				r.PingPongNsOp, r.PingPongAllocsOp)
		default:
			fmt.Fprintf(os.Stderr, "chantbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{
			"table1", "table2", "fig8", "table3", "table4", "table5",
			"fig10", "fig11", "fig12", "fig13",
			"ablation-testany", "ablation-fastpath", "ablation-delivery",
			"ablation-scaling", "modern",
		} {
			runExp(name)
		}
		return 0
	}
	runExp(*exp)
	return 0
}

// checkParallelBaseline compares a fresh parallel sweep against the
// committed BENCH_parallel.json and reports whether it passes: a
// best_speedup drop of more than 10% fails. Hosts with fewer than 4 cores
// skip the comparison (matching TestParallelBench) — a small host measures
// protocol overhead, not scaling, and its number would gate nothing
// meaningful.
func checkParallelBaseline(path string, got *experiments.ParallelResult) bool {
	if runtime.NumCPU() < 4 {
		fmt.Fprintf(os.Stderr, "chantbench: baseline check skipped: host has %d cores (<4)\n", runtime.NumCPU())
		return true
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chantbench: baseline: %v\n", err)
		return false
	}
	var want experiments.ParallelResult
	if err := json.Unmarshal(data, &want); err != nil {
		fmt.Fprintf(os.Stderr, "chantbench: baseline %s: %v\n", path, err)
		return false
	}
	if want.BestSpeedup <= 0 {
		fmt.Fprintf(os.Stderr, "chantbench: baseline %s has no best_speedup; nothing to gate\n", path)
		return true
	}
	if got.BestSpeedup < want.BestSpeedup*0.9 {
		fmt.Fprintf(os.Stderr, "chantbench: parallel best_speedup regressed: %.3fx vs committed %.3fx (>10%% drop)\n",
			got.BestSpeedup, want.BestSpeedup)
		return false
	}
	fmt.Fprintf(os.Stderr, "chantbench: parallel best_speedup %.3fx vs committed %.3fx: ok\n",
		got.BestSpeedup, want.BestSpeedup)
	return true
}

// checkRealBaseline compares a fresh real-mode sweep against the committed
// BENCH_real.json: best ping-pong latency may not regress more than 25%
// (wall-clock latency is noisy, especially on small hosts), and the minimum
// allocs/op may not exceed the committed figure by more than 10% plus half
// an allocation of absolute slack (so a committed 0.0 tolerates amortized
// startup noise but not a real per-op allocation).
func checkRealBaseline(path string, got *experiments.RealResult) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chantbench: baseline: %v\n", err)
		return false
	}
	var want experiments.RealResult
	if err := json.Unmarshal(data, &want); err != nil {
		fmt.Fprintf(os.Stderr, "chantbench: baseline %s: %v\n", path, err)
		return false
	}
	ok := true
	if want.BestPingPongNsOp > 0 && got.BestPingPongNsOp > want.BestPingPongNsOp*1.25 {
		fmt.Fprintf(os.Stderr, "chantbench: real best ping-pong regressed: %.0f ns/op vs committed %.0f (>25%%)\n",
			got.BestPingPongNsOp, want.BestPingPongNsOp)
		ok = false
	}
	if got.MinAllocsOp > want.MinAllocsOp*1.1+0.5 {
		fmt.Fprintf(os.Stderr, "chantbench: real allocs/op regressed: %.2f vs committed %.2f\n",
			got.MinAllocsOp, want.MinAllocsOp)
		ok = false
	}
	if ok {
		fmt.Fprintf(os.Stderr, "chantbench: real ping-pong %.0f ns/op (committed %.0f), %.2f allocs/op (committed %.2f): ok\n",
			got.BestPingPongNsOp, want.BestPingPongNsOp, got.MinAllocsOp, want.MinAllocsOp)
	}
	return ok
}

// writePollingTrace runs one span-traced cell of the Table-3 polling
// experiment (the default alpha/beta midpoint under Scheduler polls (PS))
// and writes the trace as Chrome trace_event JSON, loadable at
// ui.perfetto.dev. Virtual timestamps: the file is byte-reproducible.
func writePollingTrace(path string) int {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chantbench: %v\n", err)
		return 1
	}
	cfg := experiments.PollingConfig{
		Alpha:  500,
		Beta:   100,
		Policy: core.SchedulerPollsPS,
	}
	row, n, err := experiments.WritePollingTrace(f, cfg)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chantbench: trace-out: %v\n", err)
		return 1
	}
	fmt.Printf("chantbench: wrote %d spans to %s (%s, alpha=%d beta=%d: %.2f ms, %d ctxsw, %d msgtest)\n",
		n, path, row.Policy, row.Alpha, row.Beta, row.TimeMS, row.CtxSw, row.MsgTest)
	return 0
}
