// Command chantrun demonstrates Chant across real OS processes: it forks
// itself once per processing element, rendezvouses the processes over TCP,
// and runs a token-ring demo in which every PE's thread-0 passes an
// incrementing token around the machine and PE 0 finishes by creating a
// thread remotely on every other PE.
//
// Usage:
//
//	chantrun -n 3              # launch a 3-PE machine (parent forks workers)
//
// Internal (child) mode, used by the parent when forking:
//
//	chantrun -child -pe 1 -n 3 -rendezvous 127.0.0.1:45123
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"

	"chant"
	"chant/internal/comm"
	"chant/internal/comm/tcpnet"
	"chant/internal/core"
	"chant/internal/machine"
	"chant/internal/trace"
)

func main() {
	var (
		n           = flag.Int("n", 2, "number of processing elements (OS processes)")
		child       = flag.Bool("child", false, "internal: run as one PE of an existing machine")
		pe          = flag.Int("pe", 0, "internal: this process's PE number")
		rendezvous  = flag.String("rendezvous", "", "rendezvous address (chosen automatically by the parent)")
		laps        = flag.Int("laps", 3, "times the token circles the ring")
		traceOut    = flag.String("trace-out", "", "write this PE's spans as Perfetto/Chrome trace JSON (parent process only)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (parent process only)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix(fmt.Sprintf("[pe%d] ", *pe))

	if *n < 2 {
		log.Fatal("chantrun: need at least 2 PEs")
	}
	if !*child {
		// Observability flags are deliberately not forwarded to the forked
		// children: only PE 0 (this process) traces and serves.
		parent(*n, *laps, *traceOut, *metricsAddr)
		return
	}
	runPE(int32(*pe), *n, *rendezvous, *laps, "", "")
}

// parent picks a rendezvous port, forks one child per non-zero PE, and
// then becomes PE 0 itself (the rendezvous leader and coordinator).
func parent(n, laps int, traceOut, metricsAddr string) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rendezvous := l.Addr().String()
	l.Close()

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	var kids []*exec.Cmd
	for pe := 1; pe < n; pe++ {
		cmd := exec.Command(self,
			"-child", "-pe", fmt.Sprint(pe), "-n", fmt.Sprint(n),
			"-rendezvous", rendezvous, "-laps", fmt.Sprint(laps))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("fork pe%d: %v", pe, err)
		}
		kids = append(kids, cmd)
	}
	runPE(0, n, rendezvous, laps, traceOut, metricsAddr)
	for i, k := range kids {
		if err := k.Wait(); err != nil {
			log.Fatalf("pe%d exited: %v", i+1, err)
		}
	}
	fmt.Println("[parent] all processes exited cleanly")
}

// runPE is one processing element's whole life: bootstrap, run, shut down.
// traceOut and metricsAddr are set only on PE 0; everywhere else
// observability is off and costs one nil compare per emission site.
func runPE(pe int32, n int, rendezvous string, laps int, traceOut, metricsAddr string) {
	node, err := tcpnet.Bootstrap(tcpnet.Options{
		Self:       comm.Addr{PE: pe, Proc: 0},
		Rendezvous: rendezvous,
		Lead:       pe == 0,
		Procs:      n,
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer node.Close()

	host := machine.NewRealHost(machine.Modern())
	ep := node.NewEndpoint(comm.Addr{PE: pe, Proc: 0}, host, &trace.Counters{})

	cfg := chant.Config{Policy: chant.SchedulerPollsPS}
	var tracer *trace.Tracer
	if traceOut != "" {
		// One ring is enough: this OS process hosts a single PE. Wall-clock
		// timestamps, lock-free flight recorder, lossy on wrap.
		tracer = trace.NewFlightTracer(1, trace.DefaultRingSlots)
		cfg.Tracer = tracer
	}
	if metricsAddr != "" {
		reg := trace.NewRegistry(host.Now)
		cfg.Metrics = reg
		go serveMetrics(metricsAddr, reg)
	}

	rt := core.NewDistRuntime(
		chant.Topology{PEs: n, ProcsPerPE: 1},
		cfg,
		machine.Modern(),
	)
	rt.Register("announcer", func(t *chant.Thread, arg []byte) {
		fmt.Printf("[pe%d]   remotely created thread %v says: %s\n", t.PE(), t.ID(), arg)
		t.Exit("announced")
	})

	main := func(t *chant.Thread) {
		next := chant.ChanterID{PE: (pe + 1) % int32(n), Proc: 0, Thread: 0}
		token := make([]byte, 4)
		if pe == 0 {
			// Start the token; each lap every PE increments it once.
			for lap := 0; lap < laps; lap++ {
				if err := t.Send(next, 1, token); err != nil {
					log.Fatal(err)
				}
				if _, _, err := t.Recv(chant.AnyThread, 1, token); err != nil {
					log.Fatal(err)
				}
				token[0]++
				fmt.Printf("[pe0] lap %d complete, token=%d\n", lap+1, token[0])
			}
			want := byte(laps * n)
			if token[0] != want {
				log.Fatalf("token = %d, want %d", token[0], want)
			}
			// Finale: create a thread on every other PE and join it.
			for other := int32(1); other < int32(n); other++ {
				id, err := t.Create(other, 0, "announcer", []byte("hello from pe0"), chant.CreateOpts{})
				if err != nil {
					log.Fatalf("remote create on pe%d: %v", other, err)
				}
				if v, err := t.Join(id); err != nil || v != "announced" {
					log.Fatalf("remote join on pe%d: (%v, %v)", other, v, err)
				}
			}
			fmt.Printf("[pe0] ring of %d PEs verified: token reached %d\n", n, token[0])
			return
		}
		for lap := 0; lap < laps; lap++ {
			if _, _, err := t.Recv(chant.AnyThread, 1, token); err != nil {
				log.Fatal(err)
			}
			token[0]++
			if err := t.Send(next, 1, token); err != nil {
				log.Fatal(err)
			}
		}
	}

	snap, err := rt.RunOne(comm.Addr{PE: pe, Proc: 0}, ep, main)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("[pe%d] done: %d sends, %d recvs, %d RSRs served\n",
		pe, snap.Sends, snap.Recvs, snap.RSRRequests)

	if tracer != nil {
		if err := writeTrace(traceOut, tracer); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
	}
}

// writeTrace dumps the flight recorder's surviving spans as Chrome
// trace_event JSON, loadable at ui.perfetto.dev.
func writeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	spans := tracer.Snapshot()
	if err := trace.ExportTraceJSON(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("[pe0] wrote %d spans to %s (dropped %d)\n",
		len(spans), path, tracer.Dropped())
	return nil
}

// serveMetrics exposes the live counters registry in Prometheus text form
// plus the standard pprof and expvar endpoints for the run's lifetime.
func serveMetrics(addr string, reg *trace.Registry) {
	expvar.Publish("chant", expvar.Func(reg.ExpvarSnapshot))
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("metrics server: %v", err)
	}
}
