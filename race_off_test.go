//go:build !race

package chant

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
